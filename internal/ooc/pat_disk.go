package ooc

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tea-graph/tea/internal/blockcache"
	"github.com/tea-graph/tea/internal/reqcost"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/trace"
	"github.com/tea-graph/tea/internal/xrand"
)

// DefaultTrunkSize is the out-of-core trunk size: §3.2 picks it "as small as
// possible" subject to the trunk prefix sums fitting in memory; the paper
// uses 10 on twitter under a 16 GB budget.
const DefaultTrunkSize = 10

// slotBytes is the on-disk footprint of one edge slot in a trunk record:
// weight (8) + alias probability (8) + alias target (4).
const slotBytes = 8 + 8 + 4

// RetryPolicy bounds the retry-with-backoff loop wrapped around transient
// trunk reads: up to MaxRetries reissues after the first attempt, sleeping
// BaseDelay, 2·BaseDelay, 4·BaseDelay, ... between them.
type RetryPolicy struct {
	MaxRetries int
	BaseDelay  time.Duration
}

// DefaultRetryPolicy absorbs sporadic device glitches (at a 1% transient
// fault rate, five retries drive the per-read failure probability to 1e-12)
// while a genuinely dead device still fails in under ~3ms.
var DefaultRetryPolicy = RetryPolicy{MaxRetries: 5, BaseDelay: 100 * time.Microsecond}

// DiskPAT is the out-of-core TEA sampler: trunk-granularity prefix sums stay
// in memory (|E|/trunkSize floats), while per-trunk payloads — edge weights
// and the trunk's alias table — are fetched from the store on demand.
// Sampling reads exactly one trunk record per step: O(trunkSize) I/O versus
// the O(D) of a full-neighbor-load engine (§5.6).
type DiskPAT struct {
	g         *temporal.Graph
	store     BlockStore // read path: base, or the cache wrapped around it
	base      BlockStore // the store the PAT was built onto
	cache     *blockcache.CachedStore
	trunkSize int

	trunkOff []int64   // per vertex: first trunk index
	trunkCum []float64 // per vertex: trunk-granularity prefix sums (len trunks+1 per vertex)
	cumOff   []int64
	diskBase int64 // store offset of trunk record 0

	retry   RetryPolicy
	retries atomic.Int64 // reads reissued after transient faults

	errMu    sync.Mutex
	firstErr error // first unrecoverable read failure (sticky)
}

// BuildDiskPAT lays the weighted graph's PAT onto the store. trunkSize <= 0
// selects DefaultTrunkSize.
func BuildDiskPAT(w *sampling.GraphWeights, store BlockStore, trunkSize int) (*DiskPAT, error) {
	if trunkSize <= 0 {
		trunkSize = DefaultTrunkSize
	}
	g := w.Graph()
	numV := g.NumVertices()
	d := &DiskPAT{
		g:         g,
		store:     store,
		base:      store,
		trunkSize: trunkSize,
		retry:     DefaultRetryPolicy,
		trunkOff:  make([]int64, numV+1),
		cumOff:    make([]int64, numV+1),
	}
	for u := 0; u < numV; u++ {
		trunks := numTrunks(g.Degree(temporal.Vertex(u)), trunkSize)
		d.trunkOff[u+1] = d.trunkOff[u] + int64(trunks)
		d.cumOff[u+1] = d.cumOff[u] + int64(trunks) + 1
	}
	d.trunkCum = make([]float64, d.cumOff[numV])

	// Serialize trunk records vertex by vertex. Records are fixed-size
	// (trunkSize slots, zero-padded), so any trunk's offset is computable.
	record := make([]byte, trunkSize*slotBytes)
	prob := make([]float64, trunkSize)
	alias := make([]int32, trunkSize)
	scratch := make([]int32, 2*trunkSize)
	base, err := store.Append(nil)
	if err != nil {
		return nil, err
	}
	d.diskBase = base
	for u := 0; u < numV; u++ {
		uw := w.Vertex(temporal.Vertex(u))
		cum := d.trunkCum[d.cumOff[u]:d.cumOff[u+1]]
		sum := 0.0
		for t := 0; t*trunkSize < len(uw); t++ {
			lo := t * trunkSize
			hi := lo + trunkSize
			if hi > len(uw) {
				hi = len(uw)
			}
			n := hi - lo
			sampling.FillAlias(uw[lo:hi], prob[:n], alias[:n], scratch[:2*n])
			for i := 0; i < trunkSize; i++ {
				var wv, pv float64
				var av int32
				if i < n {
					wv, pv, av = uw[lo+i], prob[i], alias[i]
				}
				o := i * slotBytes
				binary.LittleEndian.PutUint64(record[o:], math.Float64bits(wv))
				binary.LittleEndian.PutUint64(record[o+8:], math.Float64bits(pv))
				binary.LittleEndian.PutUint32(record[o+16:], uint32(av))
			}
			off := d.diskBase + (d.trunkOff[u]+int64(t))*int64(trunkSize*slotBytes)
			if err := store.WriteAt(record, off); err != nil {
				return nil, err
			}
			for _, x := range uw[lo:hi] {
				sum += x
			}
			cum[t+1] = sum
		}
	}
	return d, nil
}

func numTrunks(degree, trunkSize int) int {
	if degree == 0 {
		return 0
	}
	return (degree + trunkSize - 1) / trunkSize
}

// Name implements the engine's Sampler contract.
func (d *DiskPAT) Name() string { return "TEA-OOC" }

// trunkRecord fetches trunk t of vertex u from the store, retrying transient
// failures per the retry policy. Unrecoverable failures are wrapped with the
// vertex/trunk coordinates and recorded as the sampler's sticky first error,
// because the Sampler contract can only signal "no candidate" — Err() is how
// the engine distinguishes a dead-ended walk from a dead device.
//
// When ctx carries an active trace span (the SampleCtx path of a traced
// run), the fetch is wrapped in an "ooc.block_fetch" span annotated with the
// block coordinates, the cache source (hit/miss/coalesced/bypass) when a
// block cache is enabled, and the retry count; each retry additionally drops
// a KindRetry event into the flight recorder. Untraced runs pass
// context.Background() and skip all of it on the nil-span fast path.
//
// Cancellation is not a device fault: a fetch requested after ctx is
// cancelled fails immediately, the retry loop stops backing off the moment
// ctx dies, and neither case is recorded as the sampler's sticky first
// error — the next run on this sampler starts clean.
func (d *DiskPAT) trunkRecord(ctx context.Context, u temporal.Vertex, t int, buf []byte) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	sp := trace.StartSpan(ctx, "ooc.block_fetch")
	rc := reqcost.From(ctx)
	off := d.diskBase + (d.trunkOff[u]+int64(t))*int64(d.trunkSize*slotBytes)
	var src blockcache.ReadSource
	srcKnown := false
	readOnce := func() error {
		if (sp != nil || rc != nil) && d.cache != nil {
			s, err := d.cache.ReadAtSource(buf, off)
			src, srcKnown = s, true
			if err == nil {
				rc.CacheRead(s == blockcache.SourceCache || s == blockcache.SourceCoalesced, int64(len(buf)))
			}
			return err
		}
		err := d.store.ReadAt(buf, off)
		if err == nil {
			rc.DeviceRead(int64(len(buf)))
		}
		return err
	}
	retries := 0
	err := readOnce()
	for attempt := 0; err != nil && errors.Is(err, ErrTransient) && ctx.Err() == nil && attempt < d.retry.MaxRetries; attempt++ {
		d.retries.Add(1)
		mRetries.Inc()
		retries++
		if sp != nil {
			trace.EventCtx(ctx, trace.KindRetry, "ooc.trunk_retry",
				trace.Int("vertex", int64(u)), trace.Int("trunk", int64(t)), trace.Int("attempt", int64(attempt+1)))
		}
		if d.retry.BaseDelay > 0 {
			time.Sleep(d.retry.BaseDelay << attempt)
		}
		err = readOnce()
	}
	if err != nil {
		err = fmt.Errorf("ooc: trunk read for vertex %d trunk %d failed: %w", u, t, err)
		if ctx.Err() == nil {
			d.errMu.Lock()
			if d.firstErr == nil {
				d.firstErr = err
			}
			d.errMu.Unlock()
		}
	}
	if sp != nil {
		sp.SetInt("vertex", int64(u))
		sp.SetInt("trunk", int64(t))
		sp.SetInt("bytes", int64(len(buf)))
		if srcKnown {
			sp.SetStr("source", src.String())
		}
		if retries > 0 {
			sp.SetInt("retries", int64(retries))
		}
		sp.SetError(err)
		sp.End()
	}
	return err
}

// SetRetryPolicy replaces the transient-read retry policy. Not safe to call
// concurrently with Sample.
func (d *DiskPAT) SetRetryPolicy(p RetryPolicy) { d.retry = p }

// Retries reports how many reads were reissued after transient faults.
func (d *DiskPAT) Retries() int64 { return d.retries.Load() }

// Err returns the first unrecoverable read failure, or nil.
func (d *DiskPAT) Err() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.firstErr
}

// Sample implements the Sampler contract following §4.1's out-of-core
// protocol: the trunk of interest is chosen purely from the in-memory
// trunk-granularity prefix sums, then exactly one trunk record is fetched
// from disk — its alias table when the trunk is complete, its weight
// (prefix-sum) data when the candidate set covers it only partially. The
// partially covered trunk is proposed with its full weight and thinned by
// rejection against the candidate portion, which keeps the draw unbiased
// with one I/O per accepted proposal.
func (d *DiskPAT) Sample(u temporal.Vertex, k int, r *xrand.Rand) (int, int64, bool) {
	return d.sample(context.Background(), u, k, r)
}

// SampleCtx implements the engines' context-threaded sampling contract: the
// same draw as Sample, but trunk fetches open block-fetch trace spans under
// the caller's span when the run is traced.
func (d *DiskPAT) SampleCtx(ctx context.Context, u temporal.Vertex, k int, r *xrand.Rand) (int, int64, bool) {
	return d.sample(ctx, u, k, r)
}

// SampleBatch implements the engine's BatchSampler contract: each entry draws
// exactly as Sample would (same edge, same evaluated count, same random
// stream consumption), but trunk fetches repeat-hitting the same (vertex,
// trunk) record within the batch are served from a one-entry memo — see
// trunkMemo. Concurrent calls on disjoint frontier chunks are safe; each
// call owns its memo.
func (d *DiskPAT) SampleBatch(ctx context.Context, us []temporal.Vertex, ks []int32, rs []*xrand.Rand, edges []int32, evals []int64, oks []bool) {
	var memo trunkMemo
	for i, u := range us {
		e, ev, ok := d.sampleWith(ctx, u, int(ks[i]), rs[i], &memo)
		edges[i], evals[i], oks[i] = int32(e), ev, ok
	}
}

// WantsGroupedFrontier tells the batched kernel to sort each step's frontier
// by vertex: same-vertex walkers then arrive adjacently and their trunk
// fetches collapse into the memo (and below it, the block cache).
func (d *DiskPAT) WantsGroupedFrontier() bool { return true }

func (d *DiskPAT) sample(ctx context.Context, u temporal.Vertex, k int, r *xrand.Rand) (int, int64, bool) {
	return d.sampleWith(ctx, u, k, r, nil)
}

// trunkMemo is a one-entry read-through memo used by the batched path:
// within one SampleBatch call, consecutive draws that land on the same
// (vertex, trunk) record reuse the bytes already fetched instead of
// re-reading the store. With the frontier sorted by vertex (the kernel sorts
// it because WantsGroupedFrontier reports true) walkers parked on the same
// hub coalesce their trunk fetches deliberately — one device read serves the
// run of same-vertex walkers — rather than relying on blockcache singleflight
// timing luck. The memo affects I/O only: every draw consumes the walker's
// random stream and counts evaluated slots exactly as the scalar path.
type trunkMemo struct {
	u     temporal.Vertex
	t     int
	valid bool
	buf   []byte
}

func (d *DiskPAT) sampleWith(ctx context.Context, u temporal.Vertex, k int, r *xrand.Rand, memo *trunkMemo) (int, int64, bool) {
	if k <= 0 {
		return 0, 0, false
	}
	deg := d.g.Degree(u)
	if deg == 0 {
		return 0, 0, false
	}
	if k > deg {
		k = deg
	}
	ts := d.trunkSize
	cum := d.trunkCum[d.cumOff[u]:d.cumOff[u+1]]
	full := k / ts
	rem := k - full*ts
	if k == deg && rem != 0 {
		full, rem = numTrunks(deg, ts), 0
	}
	// Trunks overlapping the candidate set; the last may be partial.
	overlap := full
	if rem > 0 {
		overlap++
	}
	if overlap == 0 || !(cum[overlap] > 0) {
		return 0, 0, false
	}

	var buf []byte
	if memo != nil {
		if cap(memo.buf) < ts*slotBytes {
			memo.buf = make([]byte, ts*slotBytes)
		}
		buf = memo.buf[:ts*slotBytes]
	} else {
		buf = make([]byte, ts*slotBytes)
	}
	fetch := func(t int) error {
		if memo != nil {
			if memo.valid && memo.u == u && memo.t == t {
				mBatchCoalesced.Inc()
				return nil
			}
			memo.valid = false
		}
		if err := d.trunkRecord(ctx, u, t, buf); err != nil {
			return err
		}
		if memo != nil {
			memo.u, memo.t, memo.valid = u, t, true
		}
		return nil
	}
	var evaluated int64
	const proposalCap = 128
	for trial := 0; trial < proposalCap; trial++ {
		x := r.Range(cum[overlap])
		lo, hi := 0, overlap-1
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			evaluated++
			if cum[mid+1] > x {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if err := fetch(lo); err != nil {
			return 0, evaluated, false
		}
		if lo < full {
			// Complete trunk: O(1) alias draw from the fetched record.
			n := ts
			if (lo+1)*ts > deg {
				n = deg - lo*ts
			}
			i := r.IntN(n)
			o := i * slotBytes
			p := math.Float64frombits(binary.LittleEndian.Uint64(buf[o+8:]))
			a := int32(binary.LittleEndian.Uint32(buf[o+16:]))
			evaluated += 2
			if p < 0 {
				return 0, evaluated, false
			}
			if p >= 1 || r.Float64() < p {
				return lo*ts + i, evaluated, true
			}
			return lo*ts + int(a), evaluated, true
		}
		// Partial trunk proposed with its full weight: accept with the
		// candidate fraction, then ITS within the candidate portion.
		trunkW := cum[lo+1] - cum[lo]
		partialW := 0.0
		for i := 0; i < rem; i++ {
			partialW += math.Float64frombits(binary.LittleEndian.Uint64(buf[i*slotBytes:]))
		}
		evaluated += int64(rem)
		if !(partialW > 0) || r.Range(trunkW) >= partialW {
			continue // rejected: excluded (too-old) mass was hit
		}
		y := r.Range(partialW)
		acc := 0.0
		for i := 0; i < rem; i++ {
			acc += math.Float64frombits(binary.LittleEndian.Uint64(buf[i*slotBytes:]))
			evaluated++
			if y < acc {
				return full*ts + i, evaluated, true
			}
		}
		return full*ts + rem - 1, evaluated, true
	}
	// Proposal cap reached: the partial trunk's excluded (too-old) mass
	// dominates its trunk. Fall back to the exact two-read path — fetch the
	// partial weights, compute the true candidate total, and sample without
	// rejection.
	if err := fetch(full); err != nil {
		return 0, evaluated, false
	}
	partialW := 0.0
	for i := 0; i < rem; i++ {
		partialW += math.Float64frombits(binary.LittleEndian.Uint64(buf[i*slotBytes:]))
	}
	evaluated += int64(rem)
	total := cum[full] + partialW
	if !(total > 0) {
		return 0, evaluated, false
	}
	x := r.Range(total)
	if x >= cum[full] {
		y := x - cum[full]
		acc := 0.0
		for i := 0; i < rem; i++ {
			acc += math.Float64frombits(binary.LittleEndian.Uint64(buf[i*slotBytes:]))
			evaluated++
			if y < acc {
				return full*ts + i, evaluated, true
			}
		}
		return full*ts + rem - 1, evaluated, true
	}
	lo, hi := 0, full-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if cum[mid+1] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if err := fetch(lo); err != nil {
		return 0, evaluated, false
	}
	n := ts
	if (lo+1)*ts > deg {
		n = deg - lo*ts
	}
	i := r.IntN(n)
	o := i * slotBytes
	p := math.Float64frombits(binary.LittleEndian.Uint64(buf[o+8:]))
	a := int32(binary.LittleEndian.Uint32(buf[o+16:]))
	if p < 0 {
		return 0, evaluated, false
	}
	if p >= 1 || r.Float64() < p {
		return lo*ts + i, evaluated, true
	}
	return lo*ts + int(a), evaluated, true
}

// MemoryBytes implements the Sampler contract: only the trunk prefix sums
// and offsets are resident, |E|/trunkSize + O(V) — the point of the mode.
func (d *DiskPAT) MemoryBytes() int64 {
	return int64(len(d.trunkCum))*8 + int64(len(d.trunkOff)+len(d.cumOff))*8
}

// Store returns the backing block store (for I/O accounting).
func (d *DiskPAT) Store() BlockStore { return d.store }
