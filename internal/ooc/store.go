// Package ooc implements TEA's out-of-core execution mode (§4.1, §5.6): the
// sampling indices live in a file-backed block store, only the trunk
// prefix-sum arrays stay in memory, and every step fetches one trunk's
// payload (O(trunkSize) I/O) — against a GraphWalker-style baseline that must
// load all D candidate edges per step (O(D) I/O).
//
// The paper's testbed is a 1 TB SATA SSD. We substitute a real temp file plus
// exact byte/operation accounting and a calibrated cost model, because the
// experimental effect of Figure 14 is I/O *volume*, which we measure
// precisely (see DESIGN.md, substitutions).
package ooc

import (
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"github.com/tea-graph/tea/internal/metrics"
)

// Out-of-core metric families, registered eagerly so /metrics shows them (at
// zero) before the first disk-backed run. Reads dominate the mode's cost, so
// they get a block-fetch latency histogram on top of the volume counters;
// retry and injected-fault counters are fed from pat_disk.go and fault.go.
var (
	mReads       = metrics.Default.Counter("tea_ooc_reads_total")
	mReadBytes   = metrics.Default.Counter("tea_ooc_read_bytes_total")
	mReadSeconds = metrics.Default.Histogram("tea_ooc_block_fetch_seconds")
	mWrites      = metrics.Default.Counter("tea_ooc_writes_total")
	mWriteBytes  = metrics.Default.Counter("tea_ooc_written_bytes_total")
	mRetries     = metrics.Default.Counter("tea_ooc_read_retries_total")
	mInjected    = metrics.Default.Counter("tea_ooc_injected_faults_total")
	// mBatchCoalesced counts draws served from a batched sampler's one-entry
	// memo instead of the store — the deliberate same-vertex coalescing the
	// grouped frontier buys (pat_disk.go, graphwalker_disk.go).
	mBatchCoalesced = metrics.Default.Counter("tea_ooc_batch_coalesced_total")
)

// BlockStore is the I/O contract the out-of-core samplers and engine run
// against. *Store is the real file-backed implementation; FaultInjector
// wraps any BlockStore to exercise failure paths. All methods must be safe
// for concurrent use.
type BlockStore interface {
	// ReadAt fills p from offset off, accounting the transfer.
	ReadAt(p []byte, off int64) error
	// WriteAt writes p at off, accounting the transfer.
	WriteAt(p []byte, off int64) error
	// Append writes p at the end of the store and returns its offset.
	Append(p []byte) (int64, error)
	// Counters reports accumulated I/O.
	Counters() (bytesRead, readOps, bytesWritten, writeOps int64)
	// PagesRead reports device pages touched by reads (cost-model unit).
	PagesRead() int64
}

// Store is a file-backed block store with read/write accounting. All methods
// are safe for concurrent use.
type Store struct {
	f            *os.File
	path         string
	removeOnStop bool

	// end is the store's logical end offset, maintained by CAS so concurrent
	// Appends reserve disjoint ranges without serializing their I/O. It
	// tracks the max extent of WriteAt as well, matching file size.
	end atomic.Int64

	bytesRead    atomic.Int64
	readOps      atomic.Int64
	pagesRead    atomic.Int64
	bytesWritten atomic.Int64
	writeOps     atomic.Int64
}

// PageSize is the device page granularity used for I/O-time modelling: a
// read of n bytes touches ⌈n/PageSize⌉ pages.
const PageSize = 4096

// NewTempStore creates a store backed by a fresh temporary file that is
// removed on Close.
func NewTempStore() (*Store, error) {
	f, err := os.CreateTemp("", "tea-ooc-*.dat")
	if err != nil {
		return nil, fmt.Errorf("ooc: creating temp store: %w", err)
	}
	return &Store{f: f, path: f.Name(), removeOnStop: true}, nil
}

// Open opens (or creates) a store at path; the file is kept on Close.
func Open(path string) (*Store, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ooc: opening store: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close()
		return nil, fmt.Errorf("ooc: sizing store: %w", err)
	}
	s := &Store{f: f, path: path}
	s.end.Store(st.Size())
	return s, nil
}

// Path returns the backing file path.
func (s *Store) Path() string { return s.path }

// ReadAt reads len(p) bytes at off, accounting the transfer.
func (s *Store) ReadAt(p []byte, off int64) error {
	start := time.Now()
	if _, err := s.f.ReadAt(p, off); err != nil {
		return fmt.Errorf("ooc: read %d bytes at %d: %w", len(p), off, err)
	}
	mReadSeconds.ObserveSince(start)
	s.bytesRead.Add(int64(len(p)))
	s.readOps.Add(1)
	s.pagesRead.Add(int64((len(p) + PageSize - 1) / PageSize))
	mReads.Inc()
	mReadBytes.Add(int64(len(p)))
	return nil
}

// WriteAt writes p at off, accounting the transfer and extending the logical
// end offset when the write grows the file.
func (s *Store) WriteAt(p []byte, off int64) error {
	if _, err := s.f.WriteAt(p, off); err != nil {
		return fmt.Errorf("ooc: write %d bytes at %d: %w", len(p), off, err)
	}
	s.noteEnd(off + int64(len(p)))
	s.bytesWritten.Add(int64(len(p)))
	s.writeOps.Add(1)
	mWrites.Inc()
	mWriteBytes.Add(int64(len(p)))
	return nil
}

// noteEnd raises the logical end offset to at least end.
func (s *Store) noteEnd(end int64) {
	for {
		old := s.end.Load()
		if end <= old || s.end.CompareAndSwap(old, end) {
			return
		}
	}
}

// Append writes p at the current end of the store and returns its offset.
// The end offset is reserved by CAS before the write, so concurrent
// appenders get disjoint ranges (a Seek-then-WriteAt sequence would let two
// appenders read the same end and overwrite each other's blocks). Append(nil)
// reserves nothing and reports the current end.
func (s *Store) Append(p []byte) (int64, error) {
	n := int64(len(p))
	if n == 0 {
		return s.end.Load(), nil
	}
	var off int64
	for {
		off = s.end.Load()
		if s.end.CompareAndSwap(off, off+n) {
			break
		}
	}
	if err := s.WriteAt(p, off); err != nil {
		return 0, err
	}
	return off, nil
}

// Counters reports accumulated I/O.
func (s *Store) Counters() (bytesRead, readOps, bytesWritten, writeOps int64) {
	return s.bytesRead.Load(), s.readOps.Load(), s.bytesWritten.Load(), s.writeOps.Load()
}

// PagesRead reports the device pages touched by reads: the latency unit of
// the cost model (a large sequential read is charged per page, not per call).
func (s *Store) PagesRead() int64 { return s.pagesRead.Load() }

// ResetCounters zeroes the accounting, typically between experiment phases.
func (s *Store) ResetCounters() {
	s.bytesRead.Store(0)
	s.readOps.Store(0)
	s.pagesRead.Store(0)
	s.bytesWritten.Store(0)
	s.writeOps.Store(0)
}

// Close releases the backing file, deleting it for temp stores.
func (s *Store) Close() error {
	err := s.f.Close()
	if s.removeOnStop {
		if rmErr := os.Remove(s.path); err == nil {
			err = rmErr
		}
	}
	return err
}

// CostModel converts accounted I/O into simulated device time. The defaults
// approximate the paper's SATA SSD (650 MB/s sequential reads; ~100 µs per
// random operation).
type CostModel struct {
	// PerOp is the fixed latency charged per read/write operation.
	PerOp time.Duration
	// BytesPerSecond is the sustained transfer bandwidth.
	BytesPerSecond float64
}

// DefaultSSD is the cost model of the paper's evaluation machine.
var DefaultSSD = CostModel{PerOp: 100 * time.Microsecond, BytesPerSecond: 650e6}

// ReadTime returns the simulated device time for reads that touched the
// given byte volume and page count: per-page latency plus bandwidth-limited
// transfer. Pass Store.PagesRead() as pages (or an op count for a pure
// random-access model).
func (m CostModel) ReadTime(bytes, pages int64) time.Duration {
	if m.BytesPerSecond <= 0 {
		return time.Duration(pages) * m.PerOp
	}
	transfer := time.Duration(float64(bytes) / m.BytesPerSecond * float64(time.Second))
	return transfer + time.Duration(pages)*m.PerOp
}
