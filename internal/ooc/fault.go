package ooc

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tea-graph/tea/internal/xrand"
)

// ErrTransient classifies an I/O error as retryable: the same read may
// succeed if reissued (EINTR-style glitches, device hiccups, injected test
// faults). DiskPAT retries reads whose errors match errors.Is(err,
// ErrTransient) with exponential backoff; everything else is treated as
// permanent and surfaces immediately.
var ErrTransient = errors.New("ooc: transient I/O fault")

// ErrInjected marks an error produced by a FaultInjector rather than the
// real device, so tests and operators can tell drills from genuine faults.
var ErrInjected = errors.New("ooc: injected fault")

// FaultClass selects the kind of error a FaultInjector produces.
type FaultClass int

const (
	// FaultTransient faults match ErrTransient and are retryable.
	FaultTransient FaultClass = iota
	// FaultPermanent faults do not match ErrTransient: retrying is useless
	// and the engine surfaces them as wrapped errors.
	FaultPermanent
)

// FaultConfig parameterizes a FaultInjector. The zero value injects nothing.
type FaultConfig struct {
	// ReadErrorRate is the probability in [0, 1] that one ReadAt fails
	// before touching the underlying store.
	ReadErrorRate float64
	// Class selects transient (retryable) or permanent faults.
	Class FaultClass
	// Latency is added to every ReadAt, modelling a slow or contended
	// device.
	Latency time.Duration
	// Seed makes the fault sequence deterministic.
	Seed uint64
}

// FaultInjector wraps a BlockStore and injects read faults per FaultConfig:
// the §4.1 out-of-core path assumes a perfect disk, and this wrapper is how
// deployments (and our tests) verify behavior on an imperfect one without
// special hardware. Writes pass through untouched. Safe for concurrent use.
type FaultInjector struct {
	inner BlockStore
	cfg   FaultConfig

	mu       sync.Mutex
	rng      *xrand.Rand
	injected atomic.Int64
}

// NewFaultInjector wraps inner with deterministic fault injection.
func NewFaultInjector(inner BlockStore, cfg FaultConfig) *FaultInjector {
	return &FaultInjector{inner: inner, cfg: cfg, rng: xrand.New(cfg.Seed)}
}

// Injected reports how many faults have been injected so far.
func (f *FaultInjector) Injected() int64 { return f.injected.Load() }

// ReadAt implements BlockStore, possibly failing or delaying the read.
func (f *FaultInjector) ReadAt(p []byte, off int64) error {
	if f.cfg.Latency > 0 {
		time.Sleep(f.cfg.Latency)
	}
	if f.cfg.ReadErrorRate > 0 {
		f.mu.Lock()
		hit := f.rng.Float64() < f.cfg.ReadErrorRate
		f.mu.Unlock()
		if hit {
			f.injected.Add(1)
			mInjected.Inc()
			if f.cfg.Class == FaultTransient {
				return fmt.Errorf("read %d bytes at %d: %w: %w", len(p), off, ErrInjected, ErrTransient)
			}
			return fmt.Errorf("read %d bytes at %d: %w", len(p), off, ErrInjected)
		}
	}
	return f.inner.ReadAt(p, off)
}

// WriteAt implements BlockStore, delegating to the wrapped store.
func (f *FaultInjector) WriteAt(p []byte, off int64) error { return f.inner.WriteAt(p, off) }

// Append implements BlockStore, delegating to the wrapped store.
func (f *FaultInjector) Append(p []byte) (int64, error) { return f.inner.Append(p) }

// Counters implements BlockStore, reporting the wrapped store's I/O.
// Injected faults fail before the device and are not counted here.
func (f *FaultInjector) Counters() (bytesRead, readOps, bytesWritten, writeOps int64) {
	return f.inner.Counters()
}

// PagesRead implements BlockStore, reporting the wrapped store's pages.
func (f *FaultInjector) PagesRead() int64 { return f.inner.PagesRead() }
