package ooc

import (
	"context"
	"testing"
)

// Store I/O must publish volume counters and block-fetch latency to the
// default metrics registry. Deltas keep the test independent of other tests
// sharing the process-wide registry.
func TestStorePublishesMetrics(t *testing.T) {
	s, err := NewTempStore()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	reads0 := mReads.Value()
	readBytes0 := mReadBytes.Value()
	writes0 := mWrites.Value()
	fetches0 := mReadSeconds.Count()

	if _, err := s.Append(make([]byte, 128)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	if err := s.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadAt(buf, 64); err != nil {
		t.Fatal(err)
	}

	if d := mReads.Value() - reads0; d != 2 {
		t.Fatalf("reads delta = %d, want 2", d)
	}
	if d := mReadBytes.Value() - readBytes0; d != 128 {
		t.Fatalf("read bytes delta = %d, want 128", d)
	}
	if d := mWrites.Value() - writes0; d != 1 {
		t.Fatalf("writes delta = %d, want 1", d)
	}
	if d := mReadSeconds.Count() - fetches0; d != 2 {
		t.Fatalf("block-fetch observations delta = %d, want 2", d)
	}
}

// DiskPAT's transient-read retry loop must feed the retry counter, and the
// FaultInjector the injected-fault counter.
func TestRetryAndFaultMetrics(t *testing.T) {
	inner, err := NewTempStore()
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	if _, err := inner.Append(make([]byte, 256)); err != nil {
		t.Fatal(err)
	}
	inj := NewFaultInjector(inner, FaultConfig{ReadErrorRate: 1, Class: FaultTransient, Seed: 7})

	retries0 := mRetries.Value()
	injected0 := mInjected.Value()

	d := &DiskPAT{store: inj, retry: RetryPolicy{MaxRetries: 3}, trunkOff: []int64{0}, trunkSize: 1}
	if err := d.trunkRecord(context.Background(), 0, 0, make([]byte, 16)); err == nil {
		t.Fatal("read through a 100% transient fault injector succeeded")
	}
	if delta := mRetries.Value() - retries0; delta != 3 {
		t.Fatalf("retries delta = %d, want 3", delta)
	}
	if delta := mInjected.Value() - injected0; delta != 4 {
		t.Fatalf("injected delta = %d, want 4 (1 initial + 3 retries)", delta)
	}
}
