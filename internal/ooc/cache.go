package ooc

import "github.com/tea-graph/tea/internal/blockcache"

// CacheConfig is the block-cache configuration accepted by the disk samplers
// and EngineOptions (an alias of blockcache.Config so callers can stay in
// this package).
type CacheConfig = blockcache.Config

// CacheableSampler is a Sampler whose backing store can be wrapped with a
// block cache after construction.
type CacheableSampler interface {
	Sampler
	// EnableCache layers a block cache (per cfg) over the sampler's original
	// store, replacing any previously enabled cache. A non-positive capacity
	// removes caching. Returns the active cache, or nil when disabled. Not
	// safe to call concurrently with Sample.
	EnableCache(cfg CacheConfig) *blockcache.CachedStore
	// Cache returns the active cache, or nil.
	Cache() *blockcache.CachedStore
}

// enableCache implements the EnableCache contract over a sampler's base
// store: the previous cache (if any) is cleared so the resident-bytes gauge
// tracks live caches only, and the returned store is what the sampler should
// read through.
func enableCache(base BlockStore, old *blockcache.CachedStore, cfg CacheConfig) (BlockStore, *blockcache.CachedStore) {
	if old != nil {
		old.Clear()
	}
	if cfg.CapacityBytes <= 0 {
		return base, nil
	}
	c := blockcache.Wrap(base, cfg)
	return c, c
}

// EnableCache implements CacheableSampler: trunk-record reads go through the
// cache, and the device counters of Store() keep reporting device traffic
// only (the cache delegates Counters/PagesRead).
func (d *DiskPAT) EnableCache(cfg CacheConfig) *blockcache.CachedStore {
	d.store, d.cache = enableCache(d.base, d.cache, cfg)
	return d.cache
}

// Cache implements CacheableSampler.
func (d *DiskPAT) Cache() *blockcache.CachedStore { return d.cache }

// EnableCache implements CacheableSampler for the full-neighbor-load
// baseline, caching whole adjacency blocks.
func (d *DiskGraphWalker) EnableCache(cfg CacheConfig) *blockcache.CachedStore {
	d.store, d.cache = enableCache(d.base, d.cache, cfg)
	return d.cache
}

// Cache implements CacheableSampler.
func (d *DiskGraphWalker) Cache() *blockcache.CachedStore { return d.cache }
