package ooc

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"github.com/tea-graph/tea/internal/blockcache"
	"github.com/tea-graph/tea/internal/reqcost"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/trace"
	"github.com/tea-graph/tea/internal/xrand"
)

// edgeRecBytes is the on-disk footprint of one adjacency record: timestamp
// (8) plus destination (4), the data a full-scan engine must load to rebuild
// a candidate distribution.
const edgeRecBytes = 12

// DiskGraphWalker is the out-of-core baseline of §5.6: a GraphWalker-style
// engine that, on every step, loads the walker's full candidate adjacency
// block from disk (O(D) I/O) and rebuilds the transition distribution by a
// sequential scan.
type DiskGraphWalker struct {
	g        *temporal.Graph
	store    BlockStore // read path: base, or the cache wrapped around it
	base     BlockStore // the store the adjacency was built onto
	cache    *blockcache.CachedStore
	spec     sampling.WeightSpec
	lambda   float64
	minT     temporal.Time
	edgeBase int64
	edgeOff  []int64

	errMu    sync.Mutex
	firstErr error // first read failure (sticky)
}

// BuildDiskGraphWalker serializes the graph's adjacency onto the store in the
// layout the baseline reads back during sampling.
func BuildDiskGraphWalker(g *temporal.Graph, spec sampling.WeightSpec, store BlockStore) (*DiskGraphWalker, error) {
	if spec.Custom != nil {
		return nil, ErrCustomWeight
	}
	lambda := spec.Lambda
	if lambda == 0 {
		lambda = 1
	}
	minT, _ := g.TimeRange()
	d := &DiskGraphWalker{
		g:      g,
		store:  store,
		base:   store,
		spec:   spec,
		lambda: lambda,
		minT:   minT,
		edgeOff: func() []int64 {
			off := make([]int64, g.NumVertices()+1)
			for u := 0; u < g.NumVertices(); u++ {
				off[u+1] = off[u] + int64(g.Degree(temporal.Vertex(u)))
			}
			return off
		}(),
	}
	base, err := store.Append(nil)
	if err != nil {
		return nil, err
	}
	d.edgeBase = base
	buf := make([]byte, 1<<16)
	pos := 0
	off := base
	flush := func() error {
		if pos == 0 {
			return nil
		}
		if err := store.WriteAt(buf[:pos], off); err != nil {
			return err
		}
		off += int64(pos)
		pos = 0
		return nil
	}
	for u := 0; u < g.NumVertices(); u++ {
		times := g.OutTimes(temporal.Vertex(u))
		dsts := g.OutDst(temporal.Vertex(u))
		for i := range times {
			if pos+edgeRecBytes > len(buf) {
				if err := flush(); err != nil {
					return nil, err
				}
			}
			binary.LittleEndian.PutUint64(buf[pos:], uint64(times[i]))
			binary.LittleEndian.PutUint32(buf[pos+8:], uint32(dsts[i]))
			pos += edgeRecBytes
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return d, nil
}

// Name implements the engine's Sampler contract.
func (d *DiskGraphWalker) Name() string { return "GraphWalker-OOC" }

// Sample implements the Sampler contract. Per §5.6, GraphWalker "has to load
// D neighbors in memory for sampling": the engine reads the vertex's entire
// adjacency block (it has no time-ordered index to know where the candidates
// stop), then filters to the k candidates and inverse-transform samples.
func (d *DiskGraphWalker) Sample(u temporal.Vertex, k int, r *xrand.Rand) (int, int64, bool) {
	return d.sample(context.Background(), u, k, r)
}

// SampleCtx is Sample with the run's context attached: when the run is being
// traced, the adjacency load opens an "ooc.block_fetch" span annotated with
// the vertex, the bytes read, and the cache source when a cache is enabled.
func (d *DiskGraphWalker) SampleCtx(ctx context.Context, u temporal.Vertex, k int, r *xrand.Rand) (int, int64, bool) {
	return d.sample(ctx, u, k, r)
}

func (d *DiskGraphWalker) sample(ctx context.Context, u temporal.Vertex, k int, r *xrand.Rand) (int, int64, bool) {
	return d.sampleWith(ctx, u, k, r, nil)
}

// adjMemo is the batched path's one-entry read-through memo: within one
// SampleBatch call, consecutive draws for the same vertex reuse the
// adjacency block already loaded (one O(D) device read serves the whole
// same-vertex run of a grouped frontier). Only the read is memoized — the
// candidate scan and weight rebuild still run per draw, so the evaluated
// count and random stream consumption stay element-wise identical to Sample.
type adjMemo struct {
	u     temporal.Vertex
	valid bool
	buf   []byte
	w     []float64
}

func (d *DiskGraphWalker) sampleWith(ctx context.Context, u temporal.Vertex, k int, r *xrand.Rand, memo *adjMemo) (int, int64, bool) {
	if k <= 0 {
		return 0, 0, false
	}
	deg := d.g.Degree(u)
	if deg == 0 {
		return 0, 0, false
	}
	if ctx.Err() != nil {
		// Cancelled before the load: fail the draw without charging the
		// device or poisoning the sticky error; the engine classifies the
		// walk as cancelled, not dead-ended.
		return 0, 0, false
	}
	if k > deg {
		k = deg
	}
	need := deg * edgeRecBytes
	var buf []byte
	hit := false
	if memo != nil {
		if memo.valid && memo.u == u {
			hit = true
		} else {
			memo.valid = false
			if cap(memo.buf) < need {
				memo.buf = make([]byte, need)
			}
		}
		buf = memo.buf[:need]
	} else {
		buf = make([]byte, need)
	}
	if hit {
		mBatchCoalesced.Inc()
	} else {
		off := d.edgeBase + d.edgeOff[u]*edgeRecBytes
		sp := trace.StartSpan(ctx, "ooc.block_fetch")
		rc := reqcost.From(ctx)
		var err error
		if (sp != nil || rc != nil) && d.cache != nil {
			var src blockcache.ReadSource
			src, err = d.cache.ReadAtSource(buf, off)
			sp.SetStr("source", src.String())
			if err == nil {
				rc.CacheRead(src == blockcache.SourceCache || src == blockcache.SourceCoalesced, int64(len(buf)))
			}
		} else {
			err = d.store.ReadAt(buf, off)
			if err == nil {
				rc.DeviceRead(int64(len(buf)))
			}
		}
		if sp != nil {
			sp.SetInt("vertex", int64(u))
			sp.SetInt("bytes", int64(len(buf)))
		}
		if err != nil {
			err = fmt.Errorf("ooc: adjacency read for vertex %d failed: %w", u, err)
			d.errMu.Lock()
			if d.firstErr == nil {
				d.firstErr = err
			}
			d.errMu.Unlock()
			if sp != nil {
				sp.SetError(err)
				sp.End()
			}
			return 0, 0, false
		}
		sp.End()
		if memo != nil {
			memo.u, memo.valid = u, true
		}
	}
	newest := temporal.Time(int64(binary.LittleEndian.Uint64(buf)))
	var w []float64
	if memo != nil {
		if cap(memo.w) < k {
			memo.w = make([]float64, k)
		}
		w = memo.w[:k]
	} else {
		w = make([]float64, k)
	}
	total := 0.0
	for i := 0; i < k; i++ {
		t := temporal.Time(int64(binary.LittleEndian.Uint64(buf[i*edgeRecBytes:])))
		var x float64
		switch d.spec.Kind {
		case sampling.WeightUniform:
			x = 1
		case sampling.WeightLinearTime:
			x = float64(t-d.minT) + 1
		case sampling.WeightLinearRank:
			x = float64(deg - i)
		default:
			x = math.Exp(d.lambda * float64(t-newest))
		}
		w[i] = x
		total += x
	}
	idx, ok := sampling.LinearITS(w, total, r)
	return idx, int64(deg + k), ok
}

// SampleBatch implements the engine's BatchSampler contract: each entry draws
// exactly as Sample would, with same-vertex adjacency loads served from a
// one-entry memo (see adjMemo). Concurrent calls on disjoint frontier chunks
// are safe; each call owns its memo.
func (d *DiskGraphWalker) SampleBatch(ctx context.Context, us []temporal.Vertex, ks []int32, rs []*xrand.Rand, edges []int32, evals []int64, oks []bool) {
	var memo adjMemo
	for i, u := range us {
		e, ev, ok := d.sampleWith(ctx, u, int(ks[i]), rs[i], &memo)
		edges[i], evals[i], oks[i] = int32(e), ev, ok
	}
}

// WantsGroupedFrontier tells the batched kernel to sort each step's frontier
// by vertex so same-vertex walkers share one adjacency load.
func (d *DiskGraphWalker) WantsGroupedFrontier() bool { return true }

// MemoryBytes implements the Sampler contract: only vertex offsets resident.
func (d *DiskGraphWalker) MemoryBytes() int64 { return int64(len(d.edgeOff)) * 8 }

// Err returns the first read failure, or nil.
func (d *DiskGraphWalker) Err() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.firstErr
}

// Store returns the backing block store.
func (d *DiskGraphWalker) Store() BlockStore { return d.store }
