package ooc

import (
	"testing"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/testutil"
)

// The cache must compose with fault injection without masking or caching
// faults: a run over cache-on-injector with transient faults retried must
// produce exactly the walk statistics of an uncached, fault-free run, and a
// fetch that ultimately fails must never leave an entry resident.
func TestCacheOverFaultInjectorTransparent(t *testing.T) {
	g := testutil.RandomGraph(t, 300, 9000, 1000, 5)
	g.PrecomputeCandidates(1)
	w := testutil.Weights(t, g, sampling.Exponential(0.01))

	clean, err := BuildDiskPAT(w, tempStore(t), 4)
	if err != nil {
		t.Fatal(err)
	}
	resClean, err := NewEngine(g, clean, nil).Run(2, 30, 42)
	if err != nil {
		t.Fatal(err)
	}

	fi := NewFaultInjector(tempStore(t), FaultConfig{ReadErrorRate: 0.02, Class: FaultTransient, Seed: 7})
	d, err := BuildDiskPAT(w, fi, 4)
	if err != nil {
		t.Fatal(err)
	}
	d.SetRetryPolicy(RetryPolicy{MaxRetries: 5, BaseDelay: 0})
	cache := d.EnableCache(CacheConfig{CapacityBytes: 1 << 20})
	resCached, err := NewEngine(g, d, nil).Run(2, 30, 42)
	if err != nil {
		t.Fatalf("run with cache over faulty store failed: %v", err)
	}

	if fi.Injected() == 0 {
		t.Fatal("injector never fired; the test exercised nothing")
	}
	c, f := resClean.Cost, resCached.Cost
	if c.Steps != f.Steps || c.EdgesEvaluated != f.EdgesEvaluated ||
		c.WalksStarted != f.WalksStarted || c.WalksCompleted != f.WalksCompleted ||
		c.WalksDeadEnded != f.WalksDeadEnded {
		t.Fatalf("cached faulty run diverged from clean run:\nclean:  %+v\ncached: %+v", c, f)
	}
	s := cache.Stats()
	if s.Hits == 0 {
		t.Fatal("cache never hit; composition test exercised nothing")
	}
}

// A permanently failing store must leave the cache empty: the failed fetch
// is delivered as an error, never inserted, so the cache cannot serve (or
// hide) a fault.
func TestCacheNeverPoisonedByFaults(t *testing.T) {
	g := testutil.RandomGraph(t, 300, 9000, 1000, 5)
	g.PrecomputeCandidates(1)
	w := testutil.Weights(t, g, sampling.WeightSpec{})

	// The build only writes, so it succeeds over an injector that fails
	// every read; the cache then layers on top of the faulty store.
	fi := NewFaultInjector(tempStore(t), FaultConfig{ReadErrorRate: 1.0, Class: FaultPermanent, Seed: 3})
	d, err := BuildDiskPAT(w, fi, 4)
	if err != nil {
		t.Fatal(err)
	}
	cache := d.EnableCache(CacheConfig{CapacityBytes: 1 << 20})

	if _, err := NewEngine(g, d, nil).Run(1, 10, 1); err == nil {
		t.Fatal("permanent fault did not surface through the cache")
	}
	if s := cache.Stats(); s.ResidentBlocks != 0 || s.ResidentBytes != 0 {
		t.Fatalf("failed fetches were cached: %+v", s)
	}
}
