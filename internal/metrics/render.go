package metrics

import (
	"fmt"
	"io"
	"strconv"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Series of one family share a single TYPE header;
// histograms expose cumulative `_bucket` series with `le` labels plus `_sum`
// and `_count`.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	typed := make(map[string]bool)
	header := func(family, kind string) error {
		if typed[family] {
			return nil
		}
		typed[family] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", family, kind)
		return err
	}
	for _, c := range s.Counters {
		family, labels := splitName(c.Name)
		if err := header(family, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", family, joinLabels(labels), c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		family, labels := splitName(g.Name)
		if err := header(family, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", family, joinLabels(labels), formatFloat(g.Value)); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		family, labels := splitName(h.Name)
		if err := header(family, "histogram"); err != nil {
			return err
		}
		for _, b := range h.Buckets {
			le := joinLabels(labels, `le="`+formatFloat(b.UpperBound)+`"`)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, le, b.Count); err != nil {
				return err
			}
		}
		inf := joinLabels(labels, `le="+Inf"`)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", family, inf, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", family, joinLabels(labels), formatFloat(h.Sum)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", family, joinLabels(labels), h.Count); err != nil {
			return err
		}
	}
	return nil
}

// formatFloat renders a float compactly without losing precision.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
