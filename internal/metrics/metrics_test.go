package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotone
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c_total") != c {
		t.Fatal("get-or-create returned a different counter")
	}

	g := r.Gauge("g")
	g.Set(2.5)
	g.Add(-1)
	if g.Value() != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", g.Value())
	}
}

func TestKindCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind collision")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds")
	// 100 observations at ~1ms, 5 at ~1s: p50/p95 land in the 1ms bucket's
	// bound range, p99 in the 1s range.
	for i := 0; i < 100; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 5; i++ {
		h.Observe(1.0)
	}
	hs := findHist(t, r, "lat_seconds")
	if hs.Count != 105 {
		t.Fatalf("count = %d", hs.Count)
	}
	if math.Abs(hs.Sum-5.1) > 1e-9 {
		t.Fatalf("sum = %v", hs.Sum)
	}
	if hs.P50 < 0.001 || hs.P50 > 0.002 {
		t.Fatalf("p50 = %v, want within [0.001, 0.002]", hs.P50)
	}
	if hs.P99 < 1.0 || hs.P99 > 2.0 {
		t.Fatalf("p99 = %v, want within [1, 2]", hs.P99)
	}
}

func TestHistogramDropsInvalid(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	h.Observe(-1)
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatalf("invalid observations were recorded: count=%d", h.Count())
	}
}

func TestHistogramOverflowSaturates(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	h.Observe(1e9) // beyond the last bucket bound
	hs := findHist(t, r, "h")
	if hs.Count != 1 {
		t.Fatalf("count = %d", hs.Count)
	}
	if math.IsInf(hs.P99, 1) || hs.P99 <= 0 {
		t.Fatalf("saturated p99 = %v, want finite positive", hs.P99)
	}
	if _, err := json.Marshal(hs); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
}

// Concurrent increments from many goroutines must not lose updates (run
// under -race in CI).
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("c_total").Inc()
				r.Gauge("g").Add(1)
				r.Histogram("h").Observe(0.01)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("g").Value(); got != workers*perWorker {
		t.Fatalf("gauge = %v, want %d", got, workers*perWorker)
	}
	if got := r.Histogram("h").Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// A snapshot must be isolated from later registry mutations.
func TestSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(3)
	r.Histogram("h").Observe(0.5)
	snap := r.Snapshot()
	r.Counter("c_total").Add(100)
	r.Histogram("h").Observe(0.5)
	r.Counter("new_total").Inc()

	if len(snap.Counters) != 1 || snap.Counters[0].Value != 3 {
		t.Fatalf("snapshot mutated: %+v", snap.Counters)
	}
	if snap.Histograms[0].Count != 1 {
		t.Fatalf("snapshot histogram mutated: %+v", snap.Histograms[0])
	}
}

func TestPrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter(`reqs_total{endpoint="walk"}`).Add(2)
	r.Counter(`reqs_total{endpoint="ppr"}`).Add(1)
	r.Gauge("inflight").Set(3)
	r.Histogram(`lat_seconds{endpoint="walk"}`).Observe(0.001)

	var sb strings.Builder
	if err := r.Snapshot().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE reqs_total counter",
		`reqs_total{endpoint="walk"} 2`,
		`reqs_total{endpoint="ppr"} 1`,
		"# TYPE inflight gauge",
		"inflight 3",
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{endpoint="walk",le="+Inf"} 1`,
		`lat_seconds_count{endpoint="walk"} 1`,
		`lat_seconds_sum{endpoint="walk"} 0.001`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per family, even with several labeled series.
	if strings.Count(out, "# TYPE reqs_total counter") != 1 {
		t.Fatalf("duplicated TYPE header:\n%s", out)
	}
}

func TestJSONRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(7)
	r.Histogram("h").Observe(0.25)
	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Counters) != 1 || decoded.Counters[0].Value != 7 {
		t.Fatalf("roundtrip counters: %+v", decoded.Counters)
	}
	if len(decoded.Histograms) != 1 || decoded.Histograms[0].Count != 1 {
		t.Fatalf("roundtrip histograms: %+v", decoded.Histograms)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var hs HistogramSnap
	if q := hs.Quantile(0.99); q != 0 {
		t.Fatalf("empty quantile = %v", q)
	}
}

func findHist(t *testing.T, r *Registry, name string) HistogramSnap {
	t.Helper()
	for _, h := range r.Snapshot().Histograms {
		if h.Name == name {
			return h
		}
	}
	t.Fatalf("histogram %q not in snapshot", name)
	return HistogramSnap{}
}

// Concurrent writers interleaved with snapshot readers: every snapshot must
// be internally consistent and isolated — counter values monotonically
// non-decreasing across successive snapshots, histogram counts never running
// ahead of what writers could have produced, and new-metric registration
// racing Snapshot() must not corrupt either side (run under -race in CI).
func TestConcurrentSnapshotIsolation(t *testing.T) {
	r := NewRegistry()
	const writers, perWriter = 4, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("rw_total")
			h := r.Histogram("rw_seconds")
			for i := 0; i < perWriter; i++ {
				c.Inc()
				r.Gauge("rw_gauge").Set(float64(i))
				h.Observe(0.001 * float64(i%7+1))
				if i%500 == 0 {
					// Registration racing Snapshot: the registry map grows
					// while readers iterate it.
					r.Counter(fmt.Sprintf("rw_extra_total{writer=\"%d\",i=\"%d\"}", w, i)).Inc()
				}
			}
		}(w)
	}

	var lastCount int64
	readerDone := make(chan error, 1)
	go func() {
		defer close(readerDone)
		for {
			snap := r.Snapshot()
			var cur int64
			for _, c := range snap.Counters {
				if c.Name == "rw_total" {
					cur = c.Value
				}
			}
			if cur < lastCount {
				readerDone <- fmt.Errorf("counter went backwards across snapshots: %d -> %d", lastCount, cur)
				return
			}
			if cur > writers*perWriter {
				readerDone <- fmt.Errorf("counter overshoot: %d > %d", cur, writers*perWriter)
				return
			}
			lastCount = cur
			for _, h := range snap.Histograms {
				if h.Name == "rw_seconds" && h.Count > writers*perWriter {
					readerDone <- fmt.Errorf("histogram count overshoot: %d", h.Count)
					return
				}
			}
			if _, err := json.Marshal(snap); err != nil {
				readerDone <- fmt.Errorf("snapshot not JSON-encodable mid-write: %v", err)
				return
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	wg.Wait()
	close(stop)
	if err, ok := <-readerDone; ok && err != nil {
		t.Fatal(err)
	}

	// The final snapshot sees everything.
	snap := r.Snapshot()
	for _, c := range snap.Counters {
		if c.Name == "rw_total" && c.Value != writers*perWriter {
			t.Fatalf("final counter = %d, want %d", c.Value, writers*perWriter)
		}
	}
}
