// Package metrics is the engine's lightweight observability substrate: a
// registry of atomic counters, gauges, and bounded log-scale latency
// histograms, with point-in-time snapshots rendered as Prometheus text or
// JSON.
//
// The package deliberately stays off the sampling hot path: walkers keep
// their private stats.Cost counters and merge at run end (see core.RunContext
// and package stats); only per-run, per-request, and per-I/O aggregates flow
// through the atomics here. There are no dependencies beyond the standard
// library and no background goroutines.
//
// Metric names follow Prometheus conventions and may carry a literal label
// block, which is part of the registry key:
//
//	reqs := metrics.Default.Counter(`tea_server_requests_total{endpoint="walk"}`)
//	reqs.Inc()
//
// Snapshots are immutable copies; renderers group series of one family under
// a single TYPE header.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n; negative deltas are ignored to keep the counter monotone.
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic float64 that can move in both directions.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+delta)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram bucket layout: fixed log-scale buckets covering [histMin,
// histMin*histGrowth^histBuckets); anything above the last bound lands in the
// implicit +Inf bucket. With histMin = 1µs and ×2 growth the 40 buckets reach
// ~9 minutes — run and request latencies fit with ≤2× bound error, which is
// ample for p50/p95/p99 trend lines.
const (
	histMin     = 1e-6
	histGrowth  = 2.0
	histBuckets = 40
)

// Histogram is a bounded log-scale histogram of non-negative float64
// observations (typically latencies in seconds). All methods are safe for
// concurrent use.
type Histogram struct {
	counts  [histBuckets]atomic.Int64
	inf     atomic.Int64 // observations above the last bound
	count   atomic.Int64
	sumBits atomic.Uint64
}

// bucketBound returns the inclusive upper bound of bucket i.
func bucketBound(i int) float64 {
	return histMin * math.Pow(histGrowth, float64(i))
}

// Observe records one value. Negative and NaN values are dropped.
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) || v < 0 {
		return
	}
	i := 0
	if v > histMin {
		i = int(math.Ceil(math.Log(v/histMin) / math.Log(histGrowth)))
	}
	if i < histBuckets {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Registry holds named metrics. The zero value is not usable; call
// NewRegistry. All methods are safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// Default is the process-wide registry that the engine, server, and
// out-of-core store publish to; internal/server renders it on GET /metrics.
var Default = NewRegistry()

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter registered under name (which may include a
// label block), creating it on first use. Registering a name that already
// names a metric of another kind panics: that is a programming error, not an
// operational condition.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c != nil {
		return c
	}
	r.checkFree(name, "counter")
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g != nil {
		return g
	}
	r.checkFree(name, "gauge")
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h != nil {
		return h
	}
	r.checkFree(name, "histogram")
	h = &Histogram{}
	r.histograms[name] = h
	return h
}

// checkFree panics if name is already taken by a metric of another kind.
// Caller holds the write lock.
func (r *Registry) checkFree(name, kind string) {
	if _, ok := r.counters[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered as a counter, requested as %s", name, kind))
	}
	if _, ok := r.gauges[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered as a gauge, requested as %s", name, kind))
	}
	if _, ok := r.histograms[name]; ok {
		panic(fmt.Sprintf("metrics: %q already registered as a histogram, requested as %s", name, kind))
	}
}

// CounterSnap is one counter at snapshot time.
type CounterSnap struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnap is one gauge at snapshot time.
type GaugeSnap struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// BucketSnap is one cumulative histogram bucket: the count of observations
// ≤ UpperBound. The +Inf bucket is implicit (equal to Count).
type BucketSnap struct {
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// HistogramSnap is one histogram at snapshot time. Buckets are cumulative
// and trailing empty buckets are trimmed.
type HistogramSnap struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     float64      `json:"sum"`
	P50     float64      `json:"p50"`
	P95     float64      `json:"p95"`
	P99     float64      `json:"p99"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// Quantile returns an upper bound for the q-quantile (q in [0, 1]) from the
// cumulative buckets: the bound of the first bucket whose cumulative count
// reaches q·Count. Returns 0 for an empty histogram and +Inf when the
// quantile falls past the last bucket.
func (h HistogramSnap) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	for _, b := range h.Buckets {
		if b.Count >= rank {
			return b.UpperBound
		}
	}
	return math.Inf(1)
}

// Snapshot is an immutable point-in-time copy of a registry, sorted by
// metric name. Later registry mutations do not affect it.
type Snapshot struct {
	Counters   []CounterSnap   `json:"counters"`
	Gauges     []GaugeSnap     `json:"gauges"`
	Histograms []HistogramSnap `json:"histograms"`
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := &Snapshot{}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSnap{Name: name, Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSnap{Name: name, Value: g.Value()})
	}
	for name, h := range r.histograms {
		hs := HistogramSnap{Name: name, Count: h.Count(), Sum: h.Sum()}
		cum := int64(0)
		last := -1
		var buckets []BucketSnap
		for i := 0; i < histBuckets; i++ {
			cum += h.counts[i].Load()
			buckets = append(buckets, BucketSnap{UpperBound: bucketBound(i), Count: cum})
			if h.counts[i].Load() > 0 {
				last = i
			}
		}
		if last >= 0 {
			hs.Buckets = buckets[:last+1]
		}
		// Saturate the headline quantiles at the top bound so the snapshot
		// stays JSON-encodable (+Inf is not valid JSON).
		sat := func(q float64) float64 {
			v := hs.Quantile(q)
			if math.IsInf(v, 1) {
				return bucketBound(histBuckets)
			}
			return v
		}
		hs.P50 = sat(0.50)
		hs.P95 = sat(0.95)
		hs.P99 = sat(0.99)
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// splitName separates a metric name into its family and label block:
// `requests_total{endpoint="walk"}` → (`requests_total`, `endpoint="walk"`).
func splitName(name string) (family, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// joinLabels renders a label block from existing labels plus extras.
func joinLabels(labels string, extra ...string) string {
	parts := make([]string, 0, 2)
	if labels != "" {
		parts = append(parts, labels)
	}
	parts = append(parts, extra...)
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}
