// Metrics federation: merging the /metrics.json snapshots of a shard
// cluster into one view. The router scrapes every shard, stamps each series
// with a `shard="<id>"` label, and adds cluster rollups under `shard="all"`
// — counters summed, gauges summed or maxed per family policy, and the
// fixed-layout log-scale histograms merged bucket-wise (every process uses
// the same bucket bounds, so the merge is exact: total count and sum are
// preserved and merged quantiles equal pooled-sample quantiles up to bucket
// resolution). The scraping process's own series pass through unlabeled, so
// the three layers never collide:
//
//	tea_shard_steps_served_total{...}             the router's own (none)
//	tea_shard_steps_served_total{shard="1"}       shard 1's value
//	tea_shard_steps_served_total{shard="all"}     cluster rollup
package metrics

import (
	"math"
	"sort"
	"strconv"
)

// FederationLabel is the label key stamped on federated series.
const FederationLabel = "shard"

// RollupValue is the FederationLabel value of cluster rollup series.
const RollupValue = "all"

// ShardSnap is one scraped peer snapshot with the label value identifying
// it (typically the decimal shard id).
type ShardSnap struct {
	Label string
	Snap  *Snapshot
}

// gaugeRollup policies per family.
const (
	gaugeSum  = iota // additive resources: in-flight, resident bytes
	gaugeMax         // cluster-wide "highest": uptime
	gaugeSkip        // per-shard only: build info (a sum of 1s means nothing)
)

// gaugePolicy selects the rollup policy for one gauge family.
func gaugePolicy(family string) int {
	switch family {
	case "tea_build_info":
		return gaugeSkip
	case "tea_uptime_seconds":
		return gaugeMax
	default:
		return gaugeSum
	}
}

// WithLabel returns name with key="value" appended to its label block:
// `f{a="b"}` → `f{a="b",key="value"}`, `f` → `f{key="value"}`.
func WithLabel(name, key, value string) string {
	family, labels := splitName(name)
	return family + joinLabels(labels, key+"="+strconv.Quote(value))
}

// MergeHistogramSnaps merges histogram snapshots bucket-wise under the
// given series name. All snapshots must share the registry's fixed bucket
// layout (they do: the bounds are compile-time constants), so buckets align
// by upper bound; trailing-trimmed snapshots of different lengths merge
// correctly because cumulative counts are first de-accumulated per bucket.
// Total count and sum are preserved exactly.
func MergeHistogramSnaps(name string, parts ...HistogramSnap) HistogramSnap {
	out := HistogramSnap{Name: name}
	perBucket := make(map[float64]int64)
	for _, h := range parts {
		out.Count += h.Count
		out.Sum += h.Sum
		prev := int64(0)
		for _, b := range h.Buckets {
			perBucket[b.UpperBound] += b.Count - prev
			prev = b.Count
		}
	}
	bounds := make([]float64, 0, len(perBucket))
	for ub := range perBucket {
		bounds = append(bounds, ub)
	}
	sort.Float64s(bounds)
	cum := int64(0)
	for _, ub := range bounds {
		cum += perBucket[ub]
		out.Buckets = append(out.Buckets, BucketSnap{UpperBound: ub, Count: cum})
	}
	out.finalizeQuantiles()
	return out
}

// finalizeQuantiles recomputes the headline quantiles from the buckets,
// saturating +Inf at the top bound (as Registry.Snapshot does) so the
// result stays JSON-encodable.
func (h *HistogramSnap) finalizeQuantiles() {
	sat := func(q float64) float64 {
		v := h.Quantile(q)
		if math.IsInf(v, 1) {
			return bucketBound(histBuckets)
		}
		return v
	}
	h.P50 = sat(0.50)
	h.P95 = sat(0.95)
	h.P99 = sat(0.99)
}

// Federate merges peer snapshots into the scraper's own: own series pass
// through unchanged, every peer series is copied with its shard label, and
// cluster rollups are emitted under shard="all". The result is sorted like
// a Registry snapshot.
func Federate(own *Snapshot, shards []ShardSnap) *Snapshot {
	out := &Snapshot{}
	if own != nil {
		out.Counters = append(out.Counters, own.Counters...)
		out.Gauges = append(out.Gauges, own.Gauges...)
		out.Histograms = append(out.Histograms, own.Histograms...)
	}

	counterRoll := make(map[string]int64)
	gaugeRoll := make(map[string]float64)
	gaugeSeen := make(map[string]bool)
	histRoll := make(map[string][]HistogramSnap)
	var counterNames, gaugeNames, histNames []string

	for _, sh := range shards {
		if sh.Snap == nil {
			continue
		}
		for _, c := range sh.Snap.Counters {
			out.Counters = append(out.Counters, CounterSnap{
				Name: WithLabel(c.Name, FederationLabel, sh.Label), Value: c.Value})
			if _, ok := counterRoll[c.Name]; !ok {
				counterNames = append(counterNames, c.Name)
			}
			counterRoll[c.Name] += c.Value
		}
		for _, g := range sh.Snap.Gauges {
			out.Gauges = append(out.Gauges, GaugeSnap{
				Name: WithLabel(g.Name, FederationLabel, sh.Label), Value: g.Value})
			family, _ := splitName(g.Name)
			switch gaugePolicy(family) {
			case gaugeSkip:
				continue
			case gaugeMax:
				if !gaugeSeen[g.Name] || g.Value > gaugeRoll[g.Name] {
					gaugeRoll[g.Name] = g.Value
				}
			default:
				gaugeRoll[g.Name] += g.Value
			}
			if !gaugeSeen[g.Name] {
				gaugeSeen[g.Name] = true
				gaugeNames = append(gaugeNames, g.Name)
			}
		}
		for _, h := range sh.Snap.Histograms {
			out.Histograms = append(out.Histograms, HistogramSnap{
				Name:    WithLabel(h.Name, FederationLabel, sh.Label),
				Count:   h.Count, Sum: h.Sum,
				P50: h.P50, P95: h.P95, P99: h.P99,
				Buckets: h.Buckets,
			})
			if _, ok := histRoll[h.Name]; !ok {
				histNames = append(histNames, h.Name)
			}
			histRoll[h.Name] = append(histRoll[h.Name], h)
		}
	}

	for _, name := range counterNames {
		out.Counters = append(out.Counters, CounterSnap{
			Name: WithLabel(name, FederationLabel, RollupValue), Value: counterRoll[name]})
	}
	for _, name := range gaugeNames {
		out.Gauges = append(out.Gauges, GaugeSnap{
			Name: WithLabel(name, FederationLabel, RollupValue), Value: gaugeRoll[name]})
	}
	for _, name := range histNames {
		merged := MergeHistogramSnaps(WithLabel(name, FederationLabel, RollupValue), histRoll[name]...)
		out.Histograms = append(out.Histograms, merged)
	}

	sort.Slice(out.Counters, func(i, j int) bool { return out.Counters[i].Name < out.Counters[j].Name })
	sort.Slice(out.Gauges, func(i, j int) bool { return out.Gauges[i].Name < out.Gauges[j].Name })
	sort.Slice(out.Histograms, func(i, j int) bool { return out.Histograms[i].Name < out.Histograms[j].Name })
	return out
}
