package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strconv"
	"testing"
)

func TestWithLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"tea_x_total", `tea_x_total{shard="2"}`},
		{`tea_x_total{endpoint="walk"}`, `tea_x_total{endpoint="walk",shard="2"}`},
	}
	for _, c := range cases {
		if got := WithLabel(c.in, "shard", "2"); got != c.want {
			t.Fatalf("WithLabel(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// fedCounter/fedGauge/fedHist locate a series by exact name.
func fedCounter(s *Snapshot, name string) (int64, bool) {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value, true
		}
	}
	return 0, false
}

func fedGauge(s *Snapshot, name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

func fedHist(s *Snapshot, name string) (HistogramSnap, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnap{}, false
}

func TestFederateCountersSumWithLabels(t *testing.T) {
	shardVals := []int64{10, 25, 7}
	var shards []ShardSnap
	for i, v := range shardVals {
		r := NewRegistry()
		r.Counter(`tea_server_requests_total{endpoint="walk"}`).Add(v)
		r.Counter("tea_shard_steps_served_total").Add(v * 2)
		shards = append(shards, ShardSnap{Label: strconv.Itoa(i), Snap: r.Snapshot()})
	}
	own := NewRegistry()
	own.Counter("tea_router_fanouts_total").Add(3)

	fed := Federate(own.Snapshot(), shards)

	if v, ok := fedCounter(fed, "tea_router_fanouts_total"); !ok || v != 3 {
		t.Fatalf("router's own counter lost: %v %v", v, ok)
	}
	var sum int64
	for i, v := range shardVals {
		name := `tea_server_requests_total{endpoint="walk",shard="` + strconv.Itoa(i) + `"}`
		got, ok := fedCounter(fed, name)
		if !ok || got != v {
			t.Fatalf("per-shard series %s = %d ok=%v, want %d", name, got, ok, v)
		}
		sum += v
	}
	roll, ok := fedCounter(fed, `tea_server_requests_total{endpoint="walk",shard="all"}`)
	if !ok || roll != sum {
		t.Fatalf("rollup = %d ok=%v, want %d", roll, ok, sum)
	}
	roll2, ok := fedCounter(fed, `tea_shard_steps_served_total{shard="all"}`)
	if !ok || roll2 != 2*sum {
		t.Fatalf("steps rollup = %d ok=%v, want %d", roll2, ok, 2*sum)
	}
}

func TestFederateGaugePolicies(t *testing.T) {
	var shards []ShardSnap
	uptimes := []float64{5, 42, 17}
	for i, u := range uptimes {
		r := NewRegistry()
		r.Gauge("tea_uptime_seconds").Set(u)
		r.Gauge("tea_server_inflight").Set(float64(i + 1))
		r.Gauge(`tea_build_info{version="devel"}`).Set(1)
		shards = append(shards, ShardSnap{Label: strconv.Itoa(i), Snap: r.Snapshot()})
	}
	fed := Federate(nil, shards)

	if v, ok := fedGauge(fed, `tea_uptime_seconds{shard="all"}`); !ok || v != 42 {
		t.Fatalf("uptime rollup = %v ok=%v, want max 42", v, ok)
	}
	if v, ok := fedGauge(fed, `tea_server_inflight{shard="all"}`); !ok || v != 6 {
		t.Fatalf("inflight rollup = %v ok=%v, want sum 6", v, ok)
	}
	if _, ok := fedGauge(fed, `tea_build_info{version="devel",shard="all"}`); ok {
		t.Fatal("build_info must not be rolled up")
	}
	if v, ok := fedGauge(fed, `tea_build_info{version="devel",shard="1"}`); !ok || v != 1 {
		t.Fatalf("per-shard build_info missing: %v %v", v, ok)
	}
}

// TestHistogramMergeProperty is the satellite's property test: for random
// observation sets split over k shards, the bucket-wise merge preserves
// total count and sum exactly, and p50/p95/p99 equal the pooled-sample
// histogram's quantiles (the layouts are identical, so the merge is exact
// at bucket resolution — stronger than the one-bucket-relative-error bound
// the merge guarantees in general).
func TestHistogramMergeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(5)
		n := 1 + rng.Intn(2000)

		pooled := NewRegistry()
		pooledHist := pooled.Histogram("tea_server_request_seconds")
		shardRegs := make([]*Registry, k)
		for i := range shardRegs {
			shardRegs[i] = NewRegistry()
		}

		var sum float64
		for j := 0; j < n; j++ {
			// Log-uniform over ~9 decades, plus occasional zeros and huge
			// outliers beyond the last bucket bound.
			var v float64
			switch rng.Intn(10) {
			case 0:
				v = 0
			case 1:
				v = 1e6 * rng.Float64() // +Inf bucket territory
			default:
				v = math.Pow(10, -7+9*rng.Float64())
			}
			sum += v
			pooledHist.Observe(v)
			shardRegs[rng.Intn(k)].Histogram("tea_server_request_seconds").Observe(v)
		}

		var parts []HistogramSnap
		var shards []ShardSnap
		for i, r := range shardRegs {
			snap := r.Snapshot()
			shards = append(shards, ShardSnap{Label: strconv.Itoa(i), Snap: snap})
			if len(snap.Histograms) > 0 {
				parts = append(parts, snap.Histograms[0])
			}
		}
		merged := MergeHistogramSnaps("tea_server_request_seconds", parts...)
		want := pooled.Snapshot().Histograms[0]

		if merged.Count != want.Count {
			t.Fatalf("trial %d: merged count %d != pooled %d", trial, merged.Count, want.Count)
		}
		if math.Abs(merged.Sum-want.Sum) > 1e-9*math.Max(1, math.Abs(want.Sum)) {
			t.Fatalf("trial %d: merged sum %g != pooled %g", trial, merged.Sum, want.Sum)
		}
		if merged.P50 != want.P50 || merged.P95 != want.P95 || merged.P99 != want.P99 {
			t.Fatalf("trial %d: merged quantiles p50=%g p95=%g p99=%g != pooled p50=%g p95=%g p99=%g",
				trial, merged.P50, merged.P95, merged.P99, want.P50, want.P95, want.P99)
		}
		// Bucket-exactness: cumulative counts agree wherever pooled has a
		// bucket (merged may carry extra trailing buckets with equal counts).
		mcum := make(map[float64]int64, len(merged.Buckets))
		for _, b := range merged.Buckets {
			mcum[b.UpperBound] = b.Count
		}
		for _, b := range want.Buckets {
			if got, ok := mcum[b.UpperBound]; !ok || got != b.Count {
				t.Fatalf("trial %d: bucket le=%g merged=%d(ok=%v) pooled=%d", trial, b.UpperBound, got, ok, b.Count)
			}
		}

		// The full Federate path agrees with the direct merge.
		fed := Federate(nil, shards)
		rolled, ok := fedHist(fed, `tea_server_request_seconds{shard="all"}`)
		if !ok || rolled.Count != want.Count || rolled.P99 != want.P99 {
			t.Fatalf("trial %d: federated rollup mismatch (ok=%v)", trial, ok)
		}
	}
}

// TestHistogramMergeQuantileError checks the documented general bound: the
// merged quantile is within one bucket's relative error (a factor of the
// bucket growth) of the exact sample quantile.
func TestHistogramMergeQuantileError(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		k := 2 + rng.Intn(3)
		n := 100 + rng.Intn(1000)
		var samples []float64
		shardRegs := make([]*Registry, k)
		for i := range shardRegs {
			shardRegs[i] = NewRegistry()
		}
		for j := 0; j < n; j++ {
			v := math.Pow(10, -5+6*rng.Float64())
			samples = append(samples, v)
			shardRegs[rng.Intn(k)].Histogram("h").Observe(v)
		}
		var parts []HistogramSnap
		for _, r := range shardRegs {
			if s := r.Snapshot(); len(s.Histograms) > 0 {
				parts = append(parts, s.Histograms[0])
			}
		}
		merged := MergeHistogramSnaps("h", parts...)
		sort.Float64s(samples)
		for _, q := range []struct {
			q   float64
			got float64
		}{{0.50, merged.P50}, {0.95, merged.P95}, {0.99, merged.P99}} {
			rank := int(math.Ceil(q.q*float64(n))) - 1
			if rank < 0 {
				rank = 0
			}
			exact := samples[rank]
			// The bucket bound is an upper bound within one growth factor
			// of the true value.
			if q.got < exact || q.got > exact*histGrowth*(1+1e-9) {
				t.Fatalf("trial %d: q%.0f bound %g outside (%g, %g]", trial, q.q*100, q.got, exact, exact*histGrowth)
			}
		}
	}
}

func TestFederateHistogramPerShardCopies(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h").Observe(0.001)
	r.Histogram("h").Observe(0.1)
	fed := Federate(nil, []ShardSnap{{Label: "0", Snap: r.Snapshot()}})
	per, ok := fedHist(fed, `h{shard="0"}`)
	if !ok || per.Count != 2 {
		t.Fatalf("per-shard histogram missing or wrong: %+v ok=%v", per, ok)
	}
	roll, ok := fedHist(fed, `h{shard="all"}`)
	if !ok || roll.Count != 2 || roll.Sum != per.Sum {
		t.Fatalf("rollup histogram wrong: %+v ok=%v", roll, ok)
	}
}
