package trace

import (
	"context"
	"time"
)

// Attr is one span or event annotation. Values are int64, float64, string,
// or bool; the helpers below construct them without exposing the boxing.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// Int builds an integer annotation.
func Int(key string, v int64) Attr { return Attr{Key: key, Value: v} }

// Str builds a string annotation.
func Str(key, v string) Attr { return Attr{Key: key, Value: v} }

// Float builds a float annotation.
func Float(key string, v float64) Attr { return Attr{Key: key, Value: v} }

// Span is one in-progress operation. A nil *Span is the disabled fast path:
// every method is a no-op, so call sites never branch on "is tracing on".
// A span is owned by the goroutine that started it until End, which
// publishes an immutable SpanRecord to the tracer; the annotation methods
// must not be called concurrently or after End.
type Span struct {
	tracer  *Tracer
	traceID string
	id      uint64
	parent  uint64
	name    string
	start   time.Time
	sampled bool
	attrs   []Attr
	err     string
}

// SpanRecord is one completed span as retained by the tracer and rendered by
// the exporters.
type SpanRecord struct {
	TraceID     string `json:"trace_id"`
	SpanID      uint64 `json:"span_id"`
	ParentID    uint64 `json:"parent_id,omitempty"`
	Name        string `json:"name"`
	StartMicros int64  `json:"start_us"` // Unix microseconds
	DurMicros   int64  `json:"dur_us"`
	Attrs       []Attr `json:"attrs,omitempty"`
	Error       string `json:"error,omitempty"`
}

// ctxKey keys this package's context values.
type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
	requestIDKey
)

// WithTracer returns a context carrying the tracer; Start below roots new
// traces on it.
func WithTracer(ctx context.Context, t *Tracer) context.Context {
	return context.WithValue(ctx, tracerKey, t)
}

// FromContext returns the context's tracer, or nil.
func FromContext(ctx context.Context) *Tracer {
	t, _ := ctx.Value(tracerKey).(*Tracer)
	return t
}

// WithRequestID returns a context carrying the request ID for log
// correlation (see NewLogHandler).
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey, id)
}

// RequestID returns the context's request ID, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey).(string)
	return id
}

// SpanFromContext returns the context's active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// Active reports whether the context carries a live span — i.e. whether work
// under this context is being recorded. Hot layers use it to decide once,
// up front, whether to take their context-threaded instrumented path.
func Active(ctx context.Context) bool { return SpanFromContext(ctx) != nil }

// Start opens a span under ctx: a child of the context's span when one is
// active, otherwise a new root on the context's tracer (with a fresh trace
// ID and a head sampling decision). It returns the context to pass to child
// work. When nothing would record the span — no tracer, or the tracer has
// sampling and the flight recorder both off, or the root sampling decision
// was "no" and the recorder is off — it returns ctx unchanged and a nil
// span, allocating nothing.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if parent := SpanFromContext(ctx); parent != nil {
		sp := parent.child(name)
		return context.WithValue(ctx, spanKey, sp), sp
	}
	t := FromContext(ctx)
	if t == nil {
		return ctx, nil
	}
	sp := t.startRoot(name, "", false)
	if sp == nil {
		return ctx, nil
	}
	return context.WithValue(ctx, spanKey, sp), sp
}

// StartSpan opens a leaf child of the context's active span without deriving
// a new context — the cheap form for instrumenting operations that spawn no
// sub-operations (a block fetch, a cache fill). Returns nil when the context
// has no active span.
func StartSpan(ctx context.Context, name string) *Span {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return nil
	}
	return parent.child(name)
}

// StartRoot opens a root span with an explicit trace ID — the server uses
// the request ID, so /debug/tea/trace?id=<X-Request-ID> finds the trace.
// Returns ctx unchanged and nil when the tracer records nothing.
func (t *Tracer) StartRoot(ctx context.Context, name, traceID string) (context.Context, *Span) {
	return t.startRootCtx(ctx, name, traceID, false)
}

// StartRootSampled is StartRoot with the head sampling decision forced to
// yes — used when an upstream process already sampled this request (the
// router's X-Trace-Sampled propagation), so every shard retains its part of
// the trace regardless of local sample fractions.
func (t *Tracer) StartRootSampled(ctx context.Context, name, traceID string) (context.Context, *Span) {
	return t.startRootCtx(ctx, name, traceID, true)
}

func (t *Tracer) startRootCtx(ctx context.Context, name, traceID string, force bool) (context.Context, *Span) {
	if t == nil {
		return ctx, nil
	}
	sp := t.startRoot(name, traceID, force)
	if sp == nil {
		return ctx, nil
	}
	ctx = WithTracer(ctx, t)
	return context.WithValue(ctx, spanKey, sp), sp
}

// startRoot creates a root span, deciding sampling; nil when neither the
// sampler nor the flight recorder wants it.
func (t *Tracer) startRoot(name, traceID string, force bool) *Span {
	if t == nil {
		return nil
	}
	sampled := force || t.sampleRoot()
	if !sampled && len(t.ring) == 0 {
		return nil
	}
	if traceID == "" {
		traceID = t.NewID()
	}
	return &Span{
		tracer:  t,
		traceID: traceID,
		id:      t.seq.Add(1),
		name:    name,
		start:   time.Now(),
		sampled: sampled,
	}
}

// child creates a sub-span inheriting the parent's trace and sampling.
func (s *Span) child(name string) *Span {
	if s == nil {
		return nil
	}
	return &Span{
		tracer:  s.tracer,
		traceID: s.traceID,
		id:      s.tracer.seq.Add(1),
		parent:  s.id,
		name:    name,
		start:   time.Now(),
		sampled: s.sampled,
	}
}

// TraceID returns the span's trace ID ("" for a nil span).
func (s *Span) TraceID() string {
	if s == nil {
		return ""
	}
	return s.traceID
}

// Sampled reports whether the span's trace is retained for retrieval.
func (s *Span) Sampled() bool { return s != nil && s.sampled }

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// SetStr annotates the span with a string value.
func (s *Span) SetStr(key, v string) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// SetFloat annotates the span with a float value.
func (s *Span) SetFloat(key string, v float64) {
	if s == nil {
		return
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: v})
}

// SetError records err on the span (the last one wins); nil err is ignored.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.err = err.Error()
}

// End completes the span: the record goes to the flight recorder (when on)
// and, for sampled traces, into the tracer's trace store. End must be called
// at most once; a nil span ends for free.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	attrs := s.attrs
	if inst := s.tracer.cfg.Instance; inst != "" {
		attrs = append(attrs, Attr{Key: "instance", Value: inst})
		if s.tracer.cfg.Shard >= 0 {
			attrs = append(attrs, Attr{Key: "shard_id", Value: int64(s.tracer.cfg.Shard)})
		}
	}
	rec := SpanRecord{
		TraceID:     s.traceID,
		SpanID:      s.id,
		ParentID:    s.parent,
		Name:        s.name,
		StartMicros: s.start.UnixMicro(),
		DurMicros:   end.Sub(s.start).Microseconds(),
		Attrs:       attrs,
		Error:       s.err,
	}
	if s.sampled {
		s.tracer.keep(rec)
	}
	s.tracer.recordSpan(rec)
}
