package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
)

// TestChromeTraceGolden is the schema regression test for the Chrome
// trace_event exporter: the document must round-trip through encoding/json
// with the fields chrome://tracing and Perfetto require (ph, ts, dur, pid,
// tid, args) carrying the right kinds of values.
func TestChromeTraceGolden(t *testing.T) {
	spans := []SpanRecord{
		{
			TraceID:     "req-42",
			SpanID:      1,
			Name:        "server.request",
			StartMicros: 1_000_000,
			DurMicros:   5000,
			Attrs:       []Attr{Str("endpoint", "walk"), Int("status", 200)},
		},
		{
			TraceID:     "req-42",
			SpanID:      2,
			ParentID:    1,
			Name:        "walk_batch",
			StartMicros: 1_000_100,
			DurMicros:   4000,
			Attrs:       []Attr{Int("worker", 3), Int("steps", 160)},
		},
		{
			TraceID:     "req-42",
			SpanID:      3,
			ParentID:    2,
			Name:        "ooc.block_fetch",
			StartMicros: 1_000_200,
			DurMicros:   90,
			Error:       "transient fault",
		},
	}

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, spans); err != nil {
		t.Fatal(err)
	}

	// Round-trip through the generic decoder: exactly what a viewer does.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("traceEvents = %d, want 3", len(doc.TraceEvents))
	}

	for i, ev := range doc.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing %q: %v", i, field, ev)
			}
		}
		if ev["ph"] != "X" {
			t.Fatalf("event %d ph = %v, want X (complete event)", i, ev["ph"])
		}
		for _, num := range []string{"ts", "dur", "pid", "tid"} {
			if _, ok := ev[num].(float64); !ok {
				t.Fatalf("event %d field %q is %T, want number", i, ev[num], ev[num])
			}
		}
	}

	// Spot-check the values that anchor the timeline.
	first := doc.TraceEvents[0]
	if first["ts"].(float64) != 1_000_000 || first["dur"].(float64) != 5000 {
		t.Fatalf("root ts/dur = %v/%v", first["ts"], first["dur"])
	}
	args := first["args"].(map[string]any)
	if args["endpoint"] != "walk" || args["status"].(float64) != 200 || args["trace_id"] != "req-42" {
		t.Fatalf("root args = %v", args)
	}

	// Worker lanes: the batch span's tid follows its worker annotation.
	batch := doc.TraceEvents[1]
	if batch["tid"].(float64) != 4 {
		t.Fatalf("batch tid = %v, want worker+1 = 4", batch["tid"])
	}

	// Errors surface in args so the viewer shows them.
	fetch := doc.TraceEvents[2]
	if fetch["args"].(map[string]any)["error"] != "transient fault" {
		t.Fatalf("fetch args = %v", fetch["args"])
	}

	// Re-encode: the document must survive a decode/encode cycle intact.
	again, err := json.Marshal(doc)
	if err != nil {
		t.Fatalf("re-encoding decoded trace: %v", err)
	}
	if !strings.Contains(string(again), "ooc.block_fetch") {
		t.Fatal("span name lost in round trip")
	}
}

// TestWriteJSONLines verifies one valid JSON object per line.
func TestWriteJSONLines(t *testing.T) {
	tr := New(Config{SampleFraction: 1})
	ctx, root := tr.StartRoot(context.Background(), "r", "jl")
	_, sp := Start(ctx, "child")
	sp.End()
	root.End()
	spans, _, _ := tr.Trace("jl")

	var buf bytes.Buffer
	if err := WriteJSONLines(&buf, spans); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	for _, line := range lines {
		var rec SpanRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if rec.TraceID != "jl" {
			t.Fatalf("line %q trace id = %q", line, rec.TraceID)
		}
	}
}

// TestBuildTreeOrphans: spans with missing parents become roots instead of
// disappearing.
func TestBuildTreeOrphans(t *testing.T) {
	spans := []SpanRecord{
		{SpanID: 7, ParentID: 99, Name: "orphan", StartMicros: 2},
		{SpanID: 8, Name: "root", StartMicros: 1},
	}
	roots := BuildTree(spans)
	if len(roots) != 2 {
		t.Fatalf("roots = %d, want 2 (orphan promoted)", len(roots))
	}
}
