package trace

import (
	"context"
	"sort"
	"time"
)

// Event kinds recorded by the flight recorder. KindSpan entries mirror
// completed spans; the others are discrete occurrences reported via EventCtx
// (and also appended to the sampled trace as zero-duration spans, so they
// show up as instants in the exported timeline).
const (
	KindSpan   = "span"
	KindError  = "error"
	KindCancel = "cancel"
	KindRetry  = "retry"
	KindInfo   = "info"
)

// Event is one flight-recorder entry: a completed span or a discrete
// error/cancel/retry occurrence.
type Event struct {
	Seq        uint64 `json:"seq"`
	TimeMicros int64  `json:"time_us"` // Unix microseconds
	Kind       string `json:"kind"`
	Name       string `json:"name"`
	TraceID    string `json:"trace_id,omitempty"`
	SpanID     uint64 `json:"span_id,omitempty"`
	DurMicros  int64  `json:"dur_us,omitempty"`
	Attrs      []Attr `json:"attrs,omitempty"`
	Error      string `json:"error,omitempty"`
}

// record publishes e into the ring: claim a slot with one atomic add, store
// an immutable pointer. Concurrent writers never block each other; a reader
// racing a lapped writer sees either the old or the new event, both valid.
func (t *Tracer) record(e *Event) {
	if t == nil || len(t.ring) == 0 {
		return
	}
	i := t.ringPos.Add(1) - 1
	e.Seq = i
	t.ring[i&t.ringMask].Store(e)
}

// recordSpan mirrors a completed span into the flight recorder.
func (t *Tracer) recordSpan(rec SpanRecord) {
	if t == nil || len(t.ring) == 0 {
		return
	}
	t.record(&Event{
		TimeMicros: rec.StartMicros,
		Kind:       KindSpan,
		Name:       rec.Name,
		TraceID:    rec.TraceID,
		SpanID:     rec.SpanID,
		DurMicros:  rec.DurMicros,
		Attrs:      rec.Attrs,
		Error:      rec.Error,
	})
}

// EventCtx records a discrete occurrence (use the Kind* constants) against
// the context's trace: always into the flight recorder, and into the sampled
// trace as a zero-duration span when the current trace is sampled. With no
// tracer or span in ctx the event is dropped. Event call sites are cold
// paths (errors, cancellations, retries), so the variadic attrs are fine.
func EventCtx(ctx context.Context, kind, name string, attrs ...Attr) {
	sp := SpanFromContext(ctx)
	var t *Tracer
	if sp != nil {
		t = sp.tracer
	} else if t = FromContext(ctx); t == nil || !t.Enabled() {
		return
	}
	now := time.Now()
	e := &Event{TimeMicros: now.UnixMicro(), Kind: kind, Name: name, Attrs: attrs}
	if sp != nil {
		e.TraceID = sp.traceID
		e.SpanID = sp.id
		if sp.sampled {
			sp.tracer.keep(SpanRecord{
				TraceID:     sp.traceID,
				SpanID:      sp.tracer.seq.Add(1),
				ParentID:    sp.id,
				Name:        name,
				StartMicros: now.UnixMicro(),
				Attrs:       append([]Attr{Str("kind", kind)}, attrs...),
			})
		}
	}
	t.record(e)
}

// Flight snapshots the flight recorder, oldest event first. It is safe to
// call at any time, including while spans are completing.
func (t *Tracer) Flight() []Event {
	if t == nil || len(t.ring) == 0 {
		return nil
	}
	out := make([]Event, 0, len(t.ring))
	for i := range t.ring {
		if e := t.ring[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
