package trace

import (
	"context"
	"log/slog"
)

// logHandler decorates another slog.Handler with the request and trace IDs
// carried by each record's context, so every log line emitted under a traced
// request is greppable by either ID without call sites threading them
// through by hand.
type logHandler struct {
	inner slog.Handler
}

// NewLogHandler wraps inner so that records logged with a context carrying a
// request ID (WithRequestID) or an active span gain request_id and trace_id
// attributes.
func NewLogHandler(inner slog.Handler) slog.Handler { return logHandler{inner: inner} }

func (h logHandler) Enabled(ctx context.Context, level slog.Level) bool {
	return h.inner.Enabled(ctx, level)
}

func (h logHandler) Handle(ctx context.Context, rec slog.Record) error {
	if id := RequestID(ctx); id != "" {
		rec.AddAttrs(slog.String("request_id", id))
	}
	if sp := SpanFromContext(ctx); sp != nil {
		rec.AddAttrs(slog.String("trace_id", sp.traceID))
	}
	return h.inner.Handle(ctx, rec)
}

func (h logHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return logHandler{inner: h.inner.WithAttrs(attrs)}
}

func (h logHandler) WithGroup(name string) slog.Handler {
	return logHandler{inner: h.inner.WithGroup(name)}
}
