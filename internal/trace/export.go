package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// ChromeEvent is one trace_event entry in the Chrome/Perfetto JSON format:
// complete ("ph":"X") events with microsecond timestamps. The field set is
// the documented minimum that chrome://tracing and Perfetto load.
type ChromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Phase string         `json:"ph"`
	TS    int64          `json:"ts"`  // start, microseconds
	Dur   int64          `json:"dur"` // duration, microseconds
	PID   int            `json:"pid"`
	TID   int64          `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeDoc is the top-level trace_event JSON object form.
type chromeDoc struct {
	TraceEvents     []ChromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// ChromeEvents converts completed spans to trace_event entries. Processes
// (pid) group spans by origin: a span annotated with an integer "shard_id"
// attribute lands in pid shard+2 (so shard 0 is pid 2), everything else —
// the router's or a single process's own spans — in pid 1; a process_name
// metadata event names each pid from the span's "instance" attribute.
// Lanes (tid) group spans by worker: a span annotated with an integer
// "worker" attribute lands in lane worker+1, everything else (request, run,
// ooc spans riding a worker's context keep their worker lane via their own
// annotation) in lane 0, so per-worker walk batches render side by side.
func ChromeEvents(spans []SpanRecord) []ChromeEvent {
	events := make([]ChromeEvent, 0, len(spans))
	names := make(map[int]string)
	for _, s := range spans {
		ev := ChromeEvent{
			Name:  s.Name,
			Cat:   "tea",
			Phase: "X",
			TS:    s.StartMicros,
			Dur:   s.DurMicros,
			PID:   1,
		}
		instance := ""
		if len(s.Attrs) > 0 || s.Error != "" {
			ev.Args = make(map[string]any, len(s.Attrs)+2)
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
				switch a.Key {
				case "worker":
					if w, ok := a.Value.(int64); ok {
						ev.TID = w + 1
					}
				case "shard_id":
					switch v := a.Value.(type) {
					case int64:
						ev.PID = int(v) + 2
					case float64: // decoded from JSON
						ev.PID = int(v) + 2
					}
				case "instance":
					if v, ok := a.Value.(string); ok {
						instance = v
					}
				}
			}
			if s.Error != "" {
				ev.Args["error"] = s.Error
			}
			ev.Args["trace_id"] = s.TraceID
		}
		if instance != "" && names[ev.PID] == "" {
			names[ev.PID] = instance
		}
		events = append(events, ev)
	}
	for pid, name := range names {
		events = append(events, ChromeEvent{
			Name:  "process_name",
			Phase: "M",
			PID:   pid,
			Args:  map[string]any{"name": name},
		})
	}
	return events
}

// WriteChromeTrace renders spans as a Chrome trace_event JSON document
// (object form, displayTimeUnit ms) loadable in chrome://tracing and
// Perfetto.
func WriteChromeTrace(w io.Writer, spans []SpanRecord) error {
	doc := chromeDoc{TraceEvents: ChromeEvents(spans), DisplayTimeUnit: "ms"}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("trace: encoding chrome trace: %w", err)
	}
	return nil
}

// WriteJSONLines renders spans one JSON object per line — the compact form
// for piping into jq or shipping to a log store.
func WriteJSONLines(w io.Writer, spans []SpanRecord) error {
	enc := json.NewEncoder(w)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return fmt.Errorf("trace: encoding span: %w", err)
		}
	}
	return nil
}

// Node is one span with its children resolved — the tree form served by
// GET /debug/tea/trace.
type Node struct {
	SpanRecord
	Children []*Node `json:"children,omitempty"`
}

// BuildTree links spans into parent→child trees. Spans whose parent is
// missing (evicted or still open) become roots. Input order is preserved
// within each child list, so pass spans sorted by start time (Tracer.Trace
// returns them that way).
func BuildTree(spans []SpanRecord) []*Node {
	nodes := make(map[uint64]*Node, len(spans))
	for i := range spans {
		nodes[spans[i].SpanID] = &Node{SpanRecord: spans[i]}
	}
	var roots []*Node
	for i := range spans {
		n := nodes[spans[i].SpanID]
		if p := nodes[spans[i].ParentID]; p != nil && spans[i].ParentID != spans[i].SpanID {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	return roots
}
