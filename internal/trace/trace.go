// Package trace is the engine's request-scoped observability layer: a
// dependency-free span tracer that correlates one server request with the
// engine run it triggered, the per-worker walk batches inside that run, and
// the out-of-core block fetches (with cache hit/miss and retry annotations)
// those batches issued. Where package metrics answers "how is the system
// doing in aggregate", this package answers "why was this one request slow".
//
// Three mechanisms share one Tracer:
//
//   - Head-based sampling. Each root span (one per server request or
//     top-level run) is sampled with probability Config.SampleFraction.
//     Sampled traces are retained in full — every descendant span with its
//     annotations — and are retrievable by trace ID for export as a span
//     tree, compact JSON lines, or a Chrome trace_event document loadable in
//     chrome://tracing and Perfetto.
//
//   - Flight recorder. Independently of sampling, a lock-free ring buffer
//     keeps the last Config.FlightSpans completed spans and discrete
//     error/cancel/retry events. When a p99 spike happens with sampling off
//     (or the spike was not sampled), the recorder still holds the recent
//     past and is dumpable at any time via Flight().
//
//   - Structured logging. A slog.Handler wrapper injects the request and
//     trace IDs carried by a context into every log record, so one grep on a
//     request ID yields the full story across server, engine, and store.
//
// The disabled path is near-free by contract: when neither sampling nor the
// flight recorder wants a span, Start returns a nil *Span, every method of
// which is a no-op — no allocations, no atomics, no time calls (benchmarked
// at 0 B/op in this package's tests). Spans are owned by the goroutine that
// started them; only End publishes to shared structures.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Config sizes a Tracer. The zero value disables everything: Start returns
// nil spans and events are dropped.
type Config struct {
	// SampleFraction is the probability in [0, 1] that a new root span is
	// sampled, i.e. its whole tree retained for retrieval by trace ID.
	SampleFraction float64
	// FlightSpans is the flight-recorder capacity in events (rounded up to a
	// power of two); 0 turns the recorder off.
	FlightSpans int
	// MaxTraces bounds the retained sampled traces; the oldest trace is
	// evicted first. 0 means 64.
	MaxTraces int
	// MaxSpansPerTrace bounds one trace's span count; spans beyond the bound
	// are counted as dropped, not retained. 0 means 4096.
	MaxSpansPerTrace int
	// Instance names the process in every span this tracer records (e.g.
	// "router", "shard-2"), so spans merged across processes stay
	// attributable. Empty leaves spans unstamped.
	Instance string
	// Shard is the shard id stamped alongside Instance; negative means the
	// process serves no shard (router, single-process server).
	Shard int
}

const (
	defaultMaxTraces        = 64
	defaultMaxSpansPerTrace = 4096
)

// Tracer owns the sampled-trace store and the flight recorder. All methods
// are safe for concurrent use. A nil *Tracer is valid and fully disabled.
type Tracer struct {
	cfg Config

	seq atomic.Uint64 // span ID allocator (IDs are per-tracer unique, never 0)
	rng atomic.Uint64 // splitmix64 state for sampling decisions and trace IDs

	// Flight recorder: fixed ring of atomically published events. Writers
	// claim a slot with one atomic add and store an immutable *Event; readers
	// load slots and order by sequence number. No locks on either side.
	ring     []atomic.Pointer[Event]
	ringMask uint64
	ringPos  atomic.Uint64

	// Sampled traces, keyed by trace ID, FIFO-evicted. Only sampled span
	// completions take this lock — never the disabled or flight-only paths.
	mu     sync.Mutex
	traces map[string]*traceBuf
	order  []string
}

// traceBuf accumulates one sampled trace's completed spans.
type traceBuf struct {
	spans   []SpanRecord
	dropped int
}

// New builds a tracer. A zero cfg yields a tracer that records nothing.
func New(cfg Config) *Tracer {
	if cfg.MaxTraces <= 0 {
		cfg.MaxTraces = defaultMaxTraces
	}
	if cfg.MaxSpansPerTrace <= 0 {
		cfg.MaxSpansPerTrace = defaultMaxSpansPerTrace
	}
	t := &Tracer{cfg: cfg, traces: make(map[string]*traceBuf)}
	if cfg.FlightSpans > 0 {
		n := 1
		for n < cfg.FlightSpans {
			n <<= 1
		}
		t.ring = make([]atomic.Pointer[Event], n)
		t.ringMask = uint64(n - 1)
	}
	t.rng.Store(uint64(time.Now().UnixNano()) | 1)
	return t
}

// Enabled reports whether the tracer can record anything at all.
func (t *Tracer) Enabled() bool {
	return t != nil && (t.cfg.SampleFraction > 0 || len(t.ring) > 0)
}

// Config returns the configuration the tracer was built with (after
// defaulting).
func (t *Tracer) Config() Config { return t.cfg }

// next advances the splitmix64 state and returns a pseudo-random word.
func (t *Tracer) next() uint64 {
	for {
		old := t.rng.Load()
		x := old + 0x9e3779b97f4a7c15
		if t.rng.CompareAndSwap(old, x) {
			x ^= x >> 30
			x *= 0xbf58476d1ce4e5b9
			x ^= x >> 27
			x *= 0x94d049bb133111eb
			return x ^ (x >> 31)
		}
	}
}

// sampleRoot decides whether a new root span is sampled.
func (t *Tracer) sampleRoot() bool {
	f := t.cfg.SampleFraction
	if f <= 0 {
		return false
	}
	if f >= 1 {
		return true
	}
	return float64(t.next()>>11)/(1<<53) < f
}

// NewID returns a fresh 16-hex-character identifier, usable as a request or
// trace ID.
func (t *Tracer) NewID() string { return formatID(t.next()) }

// idState backs GenID: a process-global splitmix64 stream for callers that
// need an ID without holding a Tracer (e.g. the server minting X-Request-ID
// values while tracing is disabled).
var idState atomic.Uint64

func init() { idState.Store(uint64(time.Now().UnixNano()) | 1) }

// GenID returns a fresh 16-hex-character identifier from the process-global
// stream.
func GenID() string {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return formatID(x ^ (x >> 31))
}

// formatID renders a 64-bit word as 16 lowercase hex characters.
func formatID(x uint64) string {
	const hexdigits = "0123456789abcdef"
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexdigits[x&0xf]
		x >>= 4
	}
	return string(b[:])
}

// keep appends a completed sampled span to its trace, creating the trace
// (and evicting the oldest) as needed.
func (t *Tracer) keep(rec SpanRecord) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tb := t.traces[rec.TraceID]
	if tb == nil {
		for len(t.order) >= t.cfg.MaxTraces {
			delete(t.traces, t.order[0])
			t.order = t.order[1:]
		}
		tb = &traceBuf{}
		t.traces[rec.TraceID] = tb
		t.order = append(t.order, rec.TraceID)
	}
	if len(tb.spans) >= t.cfg.MaxSpansPerTrace {
		tb.dropped++
		return
	}
	tb.spans = append(tb.spans, rec)
}

// Trace returns the completed spans of a sampled trace (sorted by start
// time, ties by span ID) and how many spans were dropped by the per-trace
// bound. ok is false when the ID names no retained trace.
func (t *Tracer) Trace(id string) (spans []SpanRecord, dropped int, ok bool) {
	if t == nil {
		return nil, 0, false
	}
	t.mu.Lock()
	tb := t.traces[id]
	if tb != nil {
		spans = append([]SpanRecord(nil), tb.spans...)
		dropped = tb.dropped
	}
	t.mu.Unlock()
	if tb == nil {
		return nil, 0, false
	}
	sortSpans(spans)
	return spans, dropped, true
}

// Inject adds externally produced span records — summaries shipped back by
// shard processes — to the retained trace traceID, so one request's spans
// from every process it touched assemble into one exportable trace. Span IDs
// are remapped through this tracer's allocator (remote processes allocate
// from their own sequences, so raw IDs would collide); parent links are
// preserved when the parent arrived in the same batch and cleared otherwise,
// making such spans roots that BuildTree attaches at the top level.
func (t *Tracer) Inject(traceID string, recs []SpanRecord) {
	if t == nil || traceID == "" || len(recs) == 0 {
		return
	}
	idmap := make(map[uint64]uint64, len(recs))
	for _, r := range recs {
		if r.SpanID != 0 {
			idmap[r.SpanID] = t.seq.Add(1)
		}
	}
	for _, r := range recs {
		r.TraceID = traceID
		r.SpanID = idmap[r.SpanID]
		if mapped, ok := idmap[r.ParentID]; ok && r.ParentID != 0 {
			r.ParentID = mapped
		} else {
			r.ParentID = 0
		}
		t.keep(r)
		t.recordSpan(r)
	}
}

// TraceIDs lists the retained sampled traces, oldest first.
func (t *Tracer) TraceIDs() []string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]string(nil), t.order...)
}

// sortSpans orders spans by start time, ties broken by span ID (parents
// started before their children, so tree rendering is stable).
func sortSpans(spans []SpanRecord) {
	// Insertion sort: traces are small and mostly ordered already.
	for i := 1; i < len(spans); i++ {
		for j := i; j > 0 && less(spans[j], spans[j-1]); j-- {
			spans[j], spans[j-1] = spans[j-1], spans[j]
		}
	}
}

func less(a, b SpanRecord) bool {
	if a.StartMicros != b.StartMicros {
		return a.StartMicros < b.StartMicros
	}
	return a.SpanID < b.SpanID
}
