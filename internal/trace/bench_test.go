package trace

import (
	"context"
	"testing"
)

// TestDisabledSpanZeroAllocs pins the overhead contract: with the tracer
// fully disabled (fraction 0, flight recorder off) the whole span lifecycle
// — Start, annotations, leaf spans, End — allocates nothing.
func TestDisabledSpanZeroAllocs(t *testing.T) {
	ctx := WithTracer(context.Background(), New(Config{}))
	allocs := testing.AllocsPerRun(1000, func() {
		c2, sp := Start(ctx, "engine.run")
		sp.SetInt("walks", 10)
		sp.SetStr("sampler", "HPAT+Index")
		leaf := StartSpan(c2, "ooc.block_fetch")
		leaf.SetStr("source", "hit")
		leaf.End()
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f times/op, want 0", allocs)
	}
}

// BenchmarkDisabledSpan is the number the acceptance criteria cite: the
// disabled path must report 0 B/op.
func BenchmarkDisabledSpan(b *testing.B) {
	ctx := WithTracer(context.Background(), New(Config{}))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c2, sp := Start(ctx, "engine.run")
		sp.SetInt("walks", 10)
		leaf := StartSpan(c2, "ooc.block_fetch")
		leaf.End()
		sp.End()
	}
}

// BenchmarkNoTracerSpan measures the cheapest possible disabled path: a
// context with no tracer at all (the default for every library call).
func BenchmarkNoTracerSpan(b *testing.B) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "engine.run")
		sp.End()
	}
}

// BenchmarkSampledSpan prices the enabled path for context: one child span
// with two annotations, retained in a sampled trace.
func BenchmarkSampledSpan(b *testing.B) {
	tr := New(Config{SampleFraction: 1, MaxTraces: 2, MaxSpansPerTrace: 16})
	ctx, root := tr.StartRoot(context.Background(), "bench", "bench-trace")
	defer root.End()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "walk_batch")
		sp.SetInt("steps", int64(i))
		sp.End()
	}
}

// BenchmarkFlightOnlySpan prices the flight-recorder-only path (fraction 0).
func BenchmarkFlightOnlySpan(b *testing.B) {
	tr := New(Config{FlightSpans: 256})
	ctx := WithTracer(context.Background(), tr)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, sp := Start(ctx, "walk_batch")
		sp.End()
	}
}
