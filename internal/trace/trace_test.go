package trace

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
)

// TestSpanTree exercises the full sampled path: root → children → leaf
// spans, annotations, and tree reconstruction by trace ID.
func TestSpanTree(t *testing.T) {
	tr := New(Config{SampleFraction: 1})
	ctx, root := tr.StartRoot(context.Background(), "request", "req-1")
	if root == nil {
		t.Fatal("root span not created at fraction 1")
	}
	if !root.Sampled() {
		t.Fatal("root not sampled at fraction 1")
	}
	root.SetStr("endpoint", "walk")

	ctx2, run := Start(ctx, "engine.run")
	run.SetInt("walks", 10)
	leaf := StartSpan(ctx2, "block_fetch")
	leaf.SetStr("source", "hit")
	leaf.End()
	run.End()
	root.SetInt("status", 200)
	root.End()

	spans, dropped, ok := tr.Trace("req-1")
	if !ok {
		t.Fatal("trace req-1 not retained")
	}
	if dropped != 0 {
		t.Fatalf("dropped = %d, want 0", dropped)
	}
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	roots := BuildTree(spans)
	if len(roots) != 1 || roots[0].Name != "request" {
		t.Fatalf("tree roots = %+v, want single request root", roots)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Name != "engine.run" {
		t.Fatalf("request children = %+v, want engine.run", roots[0].Children)
	}
	kids := roots[0].Children[0].Children
	if len(kids) != 1 || kids[0].Name != "block_fetch" {
		t.Fatalf("engine.run children = %+v, want block_fetch", kids)
	}
	if kids[0].Attrs[0].Key != "source" || kids[0].Attrs[0].Value != "hit" {
		t.Fatalf("leaf attrs = %+v", kids[0].Attrs)
	}
}

// TestDisabledPathNilSpans checks every disabled shape returns nil spans
// and that nil spans are safe to use.
func TestDisabledPathNilSpans(t *testing.T) {
	cases := []struct {
		name string
		ctx  context.Context
	}{
		{"no tracer", context.Background()},
		{"zero config", WithTracer(context.Background(), New(Config{}))},
		{"nil tracer", WithTracer(context.Background(), nil)},
	}
	for _, tc := range cases {
		ctx, sp := Start(tc.ctx, "x")
		if sp != nil {
			t.Fatalf("%s: got non-nil span", tc.name)
		}
		if ctx != tc.ctx {
			t.Fatalf("%s: context was rederived on the disabled path", tc.name)
		}
		sp.SetInt("k", 1)
		sp.SetStr("s", "v")
		sp.SetError(errors.New("boom"))
		sp.End()
		if StartSpan(ctx, "leaf") != nil {
			t.Fatalf("%s: leaf span on disabled path", tc.name)
		}
	}
}

// TestFlightRecorderWithoutSampling verifies spans and events land in the
// ring even when nothing is sampled, and that the ring keeps only the last N.
func TestFlightRecorderWithoutSampling(t *testing.T) {
	tr := New(Config{FlightSpans: 4})
	ctx := WithTracer(context.Background(), tr)
	for i := 0; i < 10; i++ {
		c2, sp := Start(ctx, "op")
		sp.SetInt("i", int64(i))
		EventCtx(c2, KindRetry, "trunk retry", Int("attempt", 1))
		sp.End()
	}
	if _, _, ok := tr.Trace(""); ok {
		t.Fatal("unsampled trace retained")
	}
	if ids := tr.TraceIDs(); len(ids) != 0 {
		t.Fatalf("TraceIDs = %v, want none (nothing sampled)", ids)
	}
	ev := tr.Flight()
	if len(ev) != 4 {
		t.Fatalf("flight holds %d events, want ring capacity 4", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq <= ev[i-1].Seq {
			t.Fatalf("flight not ordered by seq: %v", ev)
		}
	}
	var kinds []string
	for _, e := range ev {
		kinds = append(kinds, e.Kind)
	}
	joined := strings.Join(kinds, ",")
	if !strings.Contains(joined, KindRetry) || !strings.Contains(joined, KindSpan) {
		t.Fatalf("flight kinds = %v, want both span and retry entries", kinds)
	}
}

// TestEventInSampledTrace verifies EventCtx instants appear in the trace.
func TestEventInSampledTrace(t *testing.T) {
	tr := New(Config{SampleFraction: 1, FlightSpans: 8})
	ctx, root := tr.StartRoot(context.Background(), "request", "req-e")
	EventCtx(ctx, KindCancel, "client gone")
	root.End()
	spans, _, ok := tr.Trace("req-e")
	if !ok {
		t.Fatal("trace not retained")
	}
	found := false
	for _, s := range spans {
		if s.Name == "client gone" && len(s.Attrs) > 0 && s.Attrs[0].Value == KindCancel {
			found = true
		}
	}
	if !found {
		t.Fatalf("cancel instant missing from trace: %+v", spans)
	}
}

// TestTraceEviction verifies FIFO eviction of retained traces.
func TestTraceEviction(t *testing.T) {
	tr := New(Config{SampleFraction: 1, MaxTraces: 2})
	for _, id := range []string{"a", "b", "c"} {
		_, sp := tr.StartRoot(context.Background(), "r", id)
		sp.End()
	}
	if _, _, ok := tr.Trace("a"); ok {
		t.Fatal("oldest trace survived past MaxTraces")
	}
	for _, id := range []string{"b", "c"} {
		if _, _, ok := tr.Trace(id); !ok {
			t.Fatalf("trace %s evicted early", id)
		}
	}
}

// TestMaxSpansPerTrace verifies the per-trace bound counts drops.
func TestMaxSpansPerTrace(t *testing.T) {
	tr := New(Config{SampleFraction: 1, MaxSpansPerTrace: 2})
	ctx, root := tr.StartRoot(context.Background(), "r", "big")
	for i := 0; i < 5; i++ {
		_, sp := Start(ctx, "child")
		sp.End()
	}
	root.End()
	spans, dropped, ok := tr.Trace("big")
	if !ok || len(spans) != 2 || dropped != 4 {
		t.Fatalf("spans=%d dropped=%d ok=%v, want 2/4/true", len(spans), dropped, ok)
	}
}

// TestSampleFractionZeroFlightOff is the contract behind the overhead
// budget: fully disabled tracer in context still yields nil spans.
func TestSampleFractionZeroFlightOff(t *testing.T) {
	tr := New(Config{SampleFraction: 0, FlightSpans: 0})
	if tr.Enabled() {
		t.Fatal("zero-config tracer reports enabled")
	}
	ctx, sp := tr.StartRoot(context.Background(), "r", "id")
	if sp != nil {
		t.Fatal("span created by disabled tracer")
	}
	if _, sp2 := Start(ctx, "child"); sp2 != nil {
		t.Fatal("child span created by disabled tracer")
	}
}

// TestConcurrentSpansAndFlight hammers the tracer from many goroutines to
// give the race detector a target: sampled completions, flight writes, and
// dumps all interleave.
func TestConcurrentSpansAndFlight(t *testing.T) {
	tr := New(Config{SampleFraction: 1, FlightSpans: 64, MaxTraces: 8})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ctx, root := tr.StartRoot(context.Background(), "r", "")
				_, sp := Start(ctx, "child")
				sp.SetInt("g", int64(g))
				sp.End()
				root.End()
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			tr.Flight()
			for _, id := range tr.TraceIDs() {
				tr.Trace(id)
			}
		}
	}()
	wg.Wait()
	<-done
}

// TestRequestIDContext round-trips request IDs through context.
func TestRequestIDContext(t *testing.T) {
	if RequestID(context.Background()) != "" {
		t.Fatal("background context has a request id")
	}
	ctx := WithRequestID(context.Background(), "abc")
	if RequestID(ctx) != "abc" {
		t.Fatal("request id lost")
	}
	id := New(Config{}).NewID()
	if len(id) != 16 {
		t.Fatalf("NewID length = %d, want 16", len(id))
	}
}
