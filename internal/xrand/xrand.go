// Package xrand provides a small, fast, deterministic pseudo-random number
// generator used throughout the engine.
//
// Random walks are embarrassingly parallel, but Go's global math/rand source
// is mutex-guarded and its per-goroutine sources are awkward to seed
// reproducibly. xrand implements xoshiro256++ seeded through splitmix64,
// which gives:
//
//   - deterministic streams from a single root seed,
//   - cheap "splitting" so every walker gets an independent stream,
//   - no locking in the sampling hot path.
//
// The generator is NOT cryptographically secure; it is a simulation RNG.
package xrand

import "math/bits"

// Rand is a xoshiro256++ pseudo-random generator. The zero value is invalid;
// construct with New or Split.
type Rand struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances the given state and returns the next output. It is used
// only to expand seeds into full xoshiro state vectors.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a generator deterministically derived from seed. Any seed,
// including zero, yields a valid generator.
func New(seed uint64) *Rand {
	var r Rand
	r.Reseed(seed)
	return &r
}

// Reseed resets the generator to the stream identified by seed.
func (r *Rand) Reseed(seed uint64) {
	state := seed
	r.s0 = splitmix64(&state)
	r.s1 = splitmix64(&state)
	r.s2 = splitmix64(&state)
	r.s3 = splitmix64(&state)
}

// Split returns a new generator whose stream is deterministically derived
// from the receiver's current state and the provided stream id. The receiver
// is not advanced, so Split(i) is stable for a given parent seed.
func (r *Rand) Split(stream uint64) *Rand {
	var c Rand
	r.SplitTo(stream, &c)
	return &c
}

// SplitTo is Split without the allocation: it derives stream's generator into
// c, which may live in caller-owned bulk storage (the batched walk kernel
// seeds a whole wave of walkers into one flat array this way).
func (r *Rand) SplitTo(stream uint64, c *Rand) {
	// Mix the parent state with the stream id through splitmix64 so that
	// nearby stream ids yield uncorrelated children.
	state := r.s0 ^ bits.RotateLeft64(r.s2, 17) ^ (stream * 0xd6e8feb86659fd93)
	c.s0 = splitmix64(&state)
	c.s1 = splitmix64(&state)
	c.s2 = splitmix64(&state)
	c.s3 = splitmix64(&state)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Rand) Uint64() uint64 {
	result := bits.RotateLeft64(r.s0+r.s3, 23) + r.s0
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = bits.RotateLeft64(r.s3, 45)
	return result
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// IntN returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) IntN(n int) int {
	if n <= 0 {
		panic("xrand: IntN called with non-positive n")
	}
	return int(r.Uint64N(uint64(n)))
}

// Uint64N returns a uniform value in [0, n) using Lemire's nearly-divisionless
// bounded rejection. It panics if n == 0.
func (r *Rand) Uint64N(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64N called with zero n")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Range returns a uniform float64 in [0, max). max must be positive.
func (r *Rand) Range(max float64) float64 {
	return r.Float64() * max
}

// State exposes the four xoshiro256++ state words so a generator can be
// serialized mid-stream (the shard RPC migrates a walker's stream across
// processes this way).
func (r *Rand) State() (s0, s1, s2, s3 uint64) {
	return r.s0, r.s1, r.s2, r.s3
}

// SetState restores a generator from serialized state words. The caller is
// responsible for supplying state captured from a valid generator; the
// all-zero state is the one fixed point of xoshiro and never occurs in a
// seeded stream.
func (r *Rand) SetState(s0, s1, s2, s3 uint64) {
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}
