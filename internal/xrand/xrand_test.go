package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at draw %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestZeroSeedValid(t *testing.T) {
	r := New(0)
	if r.s0 == 0 && r.s1 == 0 && r.s2 == 0 && r.s3 == 0 {
		t.Fatal("zero seed produced all-zero state")
	}
	// xoshiro with an all-zero state would emit only zeros.
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed emits zeros")
	}
}

func TestSplitStable(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(3)
	c2 := parent.Split(3)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("Split(3) not stable at draw %d", i)
		}
	}
}

func TestSplitToMatchesSplit(t *testing.T) {
	parent := New(7)
	for stream := uint64(0); stream < 8; stream++ {
		a := parent.Split(stream)
		var b Rand
		parent.SplitTo(stream, &b)
		for i := 0; i < 200; i++ {
			if a.Uint64() != b.Uint64() {
				t.Fatalf("SplitTo(%d) diverged from Split at draw %d", stream, i)
			}
		}
	}
}

func TestSplitIndependent(t *testing.T) {
	parent := New(7)
	c1 := parent.Split(1)
	c2 := parent.Split(2)
	same := 0
	for i := 0; i < 200; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("adjacent split streams collided %d times", same)
	}
}

func TestSplitDoesNotAdvanceParent(t *testing.T) {
	a, b := New(9), New(9)
	_ = a.Split(5)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split advanced the parent state")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestIntNBounds(t *testing.T) {
	r := New(17)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := r.IntN(n)
			if v < 0 || v >= n {
				t.Fatalf("IntN(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntNUniform(t *testing.T) {
	r := New(19)
	const buckets = 10
	const draws = 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.IntN(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Fatalf("bucket %d count %d deviates more than 5%% from %v", b, c, want)
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	r := New(23)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("IntN(%d) did not panic", n)
				}
			}()
			r.IntN(n)
		}()
	}
}

func TestUint64NProperty(t *testing.T) {
	r := New(29)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		return r.Uint64N(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRangeBounds(t *testing.T) {
	r := New(31)
	for i := 0; i < 10000; i++ {
		v := r.Range(42.5)
		if v < 0 || v >= 42.5 {
			t.Fatalf("Range(42.5) = %v out of bounds", v)
		}
	}
}

func TestReseedRestoresStream(t *testing.T) {
	r := New(5)
	first := make([]uint64, 16)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(5)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Reseed draw %d = %d, want %d", i, got, first[i])
		}
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkIntN(b *testing.B) {
	r := New(1)
	var sink int
	for i := 0; i < b.N; i++ {
		sink += r.IntN(1000)
	}
	_ = sink
}
