// Package edgeio reads and writes temporal edge streams. Two formats are
// supported:
//
//   - Text: one "src dst time" triple per line (whitespace separated), '#'
//     or '%' comment lines — the format of the KONECT collection the paper
//     evaluates on.
//   - Binary: a fixed little-endian layout (magic, counts, packed triples),
//     roughly 6× faster to load for large streams.
package edgeio

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strconv"

	"github.com/tea-graph/tea/internal/chksum"
	"github.com/tea-graph/tea/internal/temporal"
)

// Magic identifies the binary stream format ("TEAG" + version 1).
var Magic = [8]byte{'T', 'E', 'A', 'G', 0, 0, 0, 1}

// ErrBadFormat is returned for malformed inputs.
var ErrBadFormat = errors.New("edgeio: malformed edge stream")

// ErrCorrupt is returned when a binary stream is structurally well-formed
// but fails its integrity footer — bit rot, truncation at a record boundary,
// or an interrupted write. Files written before footers existed (no trailer
// at all) are still accepted.
var ErrCorrupt = errors.New("edgeio: corrupt edge stream")

// ReadText parses a whitespace-separated "src dst time" stream. Lines that
// are blank or start with '#' or '%' are skipped. The time column is
// optional; when missing, the line index (1-based) is used, matching the
// edge-stream convention that arrival order is time order.
func ReadText(r io.Reader) ([]temporal.Edge, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []temporal.Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		fields := splitFields(line)
		if len(fields) == 0 {
			continue
		}
		if c := fields[0][0]; c == '#' || c == '%' {
			continue
		}
		if len(fields) < 2 {
			return nil, fmt.Errorf("%w: line %d %q", ErrBadFormat, lineNo, line)
		}
		src, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d src %q: %v", ErrBadFormat, lineNo, fields[0], err)
		}
		dst, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d dst %q: %v", ErrBadFormat, lineNo, fields[1], err)
		}
		t := int64(len(edges) + 1)
		if len(fields) >= 3 {
			t, err = strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: line %d time %q: %v", ErrBadFormat, lineNo, fields[2], err)
			}
		}
		edges = append(edges, temporal.Edge{
			Src:  temporal.Vertex(src),
			Dst:  temporal.Vertex(dst),
			Time: temporal.Time(t),
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("edgeio: reading text stream: %w", err)
	}
	return edges, nil
}

// splitFields splits on spaces, tabs, and commas without allocating a regexp.
func splitFields(line string) []string {
	var fields []string
	start := -1
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case ' ', '\t', ',', '\r':
			if start >= 0 {
				fields = append(fields, line[start:i])
				start = -1
			}
		default:
			if start < 0 {
				start = i
			}
		}
	}
	if start >= 0 {
		fields = append(fields, line[start:])
	}
	return fields
}

// WriteText writes edges as "src dst time" lines.
func WriteText(w io.Writer, edges []temporal.Edge) error {
	bw := bufio.NewWriter(w)
	for _, e := range edges {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", e.Src, e.Dst, e.Time); err != nil {
			return fmt.Errorf("edgeio: writing text stream: %w", err)
		}
	}
	return bw.Flush()
}

// WriteBinary writes the packed binary format, terminated by a CRC-32C
// integrity footer over the full payload.
func WriteBinary(w io.Writer, edges []temporal.Edge) error {
	bw := bufio.NewWriter(w)
	hw := chksum.NewWriter(bw)
	if _, err := hw.Write(Magic[:]); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(edges)))
	if _, err := hw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [16]byte
	for _, e := range edges {
		binary.LittleEndian.PutUint32(rec[0:], uint32(e.Src))
		binary.LittleEndian.PutUint32(rec[4:], uint32(e.Dst))
		binary.LittleEndian.PutUint64(rec[8:], uint64(e.Time))
		if _, err := hw.Write(rec[:]); err != nil {
			return fmt.Errorf("edgeio: writing binary stream: %w", err)
		}
	}
	footer := hw.Footer()
	if _, err := bw.Write(footer[:]); err != nil {
		return fmt.Errorf("edgeio: writing binary stream: %w", err)
	}
	return bw.Flush()
}

// ReadBinary parses the packed binary format and verifies the trailing
// CRC-32C footer; footer failures return errors wrapping ErrCorrupt.
// Streams without any footer (written by older versions) are accepted.
func ReadBinary(r io.Reader) ([]temporal.Edge, error) {
	br := bufio.NewReader(r)
	hr := chksum.NewReader(br)
	var magic [8]byte
	if _, err := io.ReadFull(hr, magic[:]); err != nil {
		return nil, fmt.Errorf("%w: missing magic: %v", ErrBadFormat, err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("%w: bad magic %x", ErrBadFormat, magic)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(hr, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: missing count: %v", ErrBadFormat, err)
	}
	n := binary.LittleEndian.Uint64(hdr[:])
	const maxEdges = 1 << 33
	if n > maxEdges {
		return nil, fmt.Errorf("%w: implausible edge count %d", ErrBadFormat, n)
	}
	edges := make([]temporal.Edge, n)
	var rec [16]byte
	for i := range edges {
		if _, err := io.ReadFull(hr, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated at edge %d: %v", ErrBadFormat, i, err)
		}
		edges[i] = temporal.Edge{
			Src:  temporal.Vertex(binary.LittleEndian.Uint32(rec[0:])),
			Dst:  temporal.Vertex(binary.LittleEndian.Uint32(rec[4:])),
			Time: temporal.Time(binary.LittleEndian.Uint64(rec[8:])),
		}
	}
	// The footer is read from br directly so its bytes stay out of the sum.
	if _, err := hr.Verify(br); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return edges, nil
}
