package edgeio

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"github.com/tea-graph/tea/internal/chksum"
	"github.com/tea-graph/tea/internal/temporal"
)

func TestReadTextBasic(t *testing.T) {
	in := `# commute network
% konect-style comment too
0 7 3
8 7 0

9,7,4
7	6	7
`
	edges, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []temporal.Edge{
		{Src: 0, Dst: 7, Time: 3},
		{Src: 8, Dst: 7, Time: 0},
		{Src: 9, Dst: 7, Time: 4},
		{Src: 7, Dst: 6, Time: 7},
	}
	if !reflect.DeepEqual(edges, want) {
		t.Fatalf("edges = %v, want %v", edges, want)
	}
}

func TestReadTextImplicitTime(t *testing.T) {
	edges, err := ReadText(strings.NewReader("1 2\n3 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	if edges[0].Time != 1 || edges[1].Time != 2 {
		t.Fatalf("implicit times = %v", edges)
	}
}

func TestReadTextNegativeTime(t *testing.T) {
	edges, err := ReadText(strings.NewReader("1 2 -5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if edges[0].Time != -5 {
		t.Fatalf("time = %d", edges[0].Time)
	}
}

func TestReadTextErrors(t *testing.T) {
	for _, in := range []string{"1\n", "x 2 3\n", "1 y 3\n", "1 2 z\n"} {
		if _, err := ReadText(strings.NewReader(in)); !errors.Is(err, ErrBadFormat) {
			t.Errorf("input %q: err = %v", in, err)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	want := temporal.CommuteEdges()
	var buf bytes.Buffer
	if err := WriteText(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: %v", got)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	want := temporal.CommuteEdges()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip: %v", got)
	}
}

func TestBinaryEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("got %v", got)
	}
}

func TestBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("short")); !errors.Is(err, ErrBadFormat) {
		t.Fatalf("short err = %v", err)
	}
	if _, err := ReadBinary(strings.NewReader("WRONGMAG\x00\x00\x00\x00\x00\x00\x00\x00")); !errors.Is(err, ErrBadFormat) {
		t.Fatal("bad magic accepted")
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, temporal.CommuteEdges()); err != nil {
		t.Fatal(err)
	}
	// Truncated mid-payload (cuts into the edge records).
	trunc := buf.Bytes()[:buf.Len()-chksum.FooterSize-4]
	if _, err := ReadBinary(bytes.NewReader(trunc)); !errors.Is(err, ErrBadFormat) {
		t.Fatal("truncated payload accepted")
	}
	// Truncated mid-footer.
	trunc = buf.Bytes()[:buf.Len()-4]
	if _, err := ReadBinary(bytes.NewReader(trunc)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("partial footer accepted")
	}
	// Implausible count.
	bad := append([]byte{}, Magic[:]...)
	bad = append(bad, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f)
	if _, err := ReadBinary(bytes.NewReader(bad)); !errors.Is(err, ErrBadFormat) {
		t.Fatal("implausible count accepted")
	}
}

// Property: binary round trip preserves arbitrary edges.
func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(raw []struct {
		S, D uint32
		T    int64
	}) bool {
		edges := make([]temporal.Edge, len(raw))
		for i, e := range raw {
			edges[i] = temporal.Edge{Src: temporal.Vertex(e.S), Dst: temporal.Vertex(e.D), Time: temporal.Time(e.T)}
		}
		var buf bytes.Buffer
		if err := WriteBinary(&buf, edges); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(edges) {
			return false
		}
		for i := range got {
			if got[i] != edges[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSplitFields(t *testing.T) {
	cases := map[string][]string{
		"a b c":       {"a", "b", "c"},
		"  a\t\tb ":   {"a", "b"},
		"a,b,c":       {"a", "b", "c"},
		"":            nil,
		"   ":         nil,
		"one":         {"one"},
		"a b\r":       {"a", "b"},
		"1 2 3 extra": {"1", "2", "3", "extra"},
	}
	for in, want := range cases {
		if got := splitFields(in); !reflect.DeepEqual(got, want) {
			t.Errorf("splitFields(%q) = %v, want %v", in, got, want)
		}
	}
}
