package edgeio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadText checks the text parser never panics and that everything it
// accepts round-trips through WriteText.
func FuzzReadText(f *testing.F) {
	f.Add("0 1 2\n")
	f.Add("# comment\n%also\n1 2\n")
	f.Add("1,2,3\n\n4\t5\t-6\n")
	f.Add("")
	f.Add("x y z")
	f.Add("4294967295 0 9223372036854775807\n")
	f.Fuzz(func(t *testing.T, input string) {
		edges, err := ReadText(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, edges); err != nil {
			t.Fatalf("WriteText of parsed edges failed: %v", err)
		}
		again, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("reparse failed: %v", err)
		}
		if len(again) != len(edges) {
			t.Fatalf("round trip changed edge count: %d -> %d", len(edges), len(again))
		}
		for i := range edges {
			if edges[i] != again[i] {
				t.Fatalf("round trip changed edge %d: %v -> %v", i, edges[i], again[i])
			}
		}
	})
}

// FuzzReadBinary checks the binary reader never panics or over-allocates on
// corrupt input.
func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteBinary(&seed, nil)
	f.Add(seed.Bytes())
	f.Add([]byte("TEAG\x00\x00\x00\x01\x03\x00\x00\x00\x00\x00\x00\x00"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, input []byte) {
		edges, err := ReadBinary(bytes.NewReader(input))
		if err != nil {
			return
		}
		// Whatever parses must re-serialize identically.
		var buf bytes.Buffer
		if err := WriteBinary(&buf, edges); err != nil {
			t.Fatalf("WriteBinary failed: %v", err)
		}
	})
}
