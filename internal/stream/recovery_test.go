package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/wal"
)

// The randomized crash-recovery harness. Each case drives a seeded op
// sequence (appends, deletes — including failing ones — and expiries) into a
// DurableGraph, crashes it at a random point, reopens the directory, and
// requires the recovered graph to equal a shadow graph built by applying the
// same op prefix to a plain in-memory Graph. Because snapshots are exact and
// replay is deterministic, equality is structural — down to identical seeded
// walk paths (requireSameGraph).

// crashOp is one scripted mutation.
type crashOp struct {
	kind    int // 0 append, 1 delete, 2 expire
	edges   []temporal.Edge
	horizon temporal.Time
}

// genOps builds a deterministic op script from seed. Deletes target real
// edges most of the time but sometimes a bogus one, so the log records
// operations that failed — replay must reproduce those failures, not trip
// over them.
func genOps(seed int64, n int) []crashOp {
	rng := rand.New(rand.NewSource(seed))
	var ops []crashOp
	var live []temporal.Edge
	now := temporal.Time(0)
	minT := temporal.Time(1)
	for len(ops) < n {
		switch r := rng.Intn(100); {
		case r < 65: // append a small batch of strictly newer edges
			batch := make([]temporal.Edge, 1+rng.Intn(4))
			for i := range batch {
				now++
				batch[i] = temporal.Edge{
					Src:  temporal.Vertex(rng.Intn(8)),
					Dst:  temporal.Vertex(1 + rng.Intn(10)),
					Time: now,
				}
			}
			live = append(live, batch...)
			ops = append(ops, crashOp{kind: 0, edges: batch})
		case r < 80 && len(live) > 0: // delete a live edge (maybe plus a bogus one)
			i := rng.Intn(len(live))
			batch := []temporal.Edge{live[i]}
			live = append(live[:i], live[i+1:]...)
			if rng.Intn(4) == 0 {
				batch = append(batch, temporal.Edge{Src: 200, Dst: 200, Time: 1}) // fails
			}
			ops = append(ops, crashOp{kind: 1, edges: batch})
		case r < 85: // delete nothing that exists: a fully failing record
			ops = append(ops, crashOp{kind: 1, edges: []temporal.Edge{{Src: 201, Dst: 201, Time: 2}}})
		case r < 95 && now > minT: // expire a slice of the window
			h := minT + temporal.Time(rng.Int63n(int64(now-minT)+1))
			minT = h
			kept := live[:0]
			for _, e := range live {
				if e.Time >= h {
					kept = append(kept, e)
				}
			}
			live = kept
			ops = append(ops, crashOp{kind: 2, horizon: h})
		}
	}
	return ops
}

// applyShadow replays ops[0:k) onto a fresh plain Graph exactly the way the
// durable committer applies them (errors ignored — they are deterministic).
func applyShadow(t *testing.T, ops []crashOp, k int) *Graph {
	t.Helper()
	g := mustNew(t, Config{})
	for _, op := range ops[:k] {
		switch op.kind {
		case 0:
			g.AppendBatch(op.edges)
		case 1:
			g.DeleteEdges(op.edges)
		case 2:
			g.ExpireBefore(op.horizon)
		}
	}
	return g
}

// applyDurable pushes ops[from:to) through the durable write path.
func applyDurable(d *DurableGraph, ops []crashOp, from, to int) error {
	for i, op := range ops[from:to] {
		var err error
		switch op.kind {
		case 0:
			err = d.AppendBatch(op.edges)
		case 1:
			err = d.DeleteEdges(op.edges)
		case 2:
			_, err = d.ExpireBefore(op.horizon)
		}
		// Op-level failures (stale, not-found) are scripted and fine; only
		// infrastructure failures (degraded, closed) abort the harness.
		if errors.Is(err, ErrDegraded) || errors.Is(err, ErrClosed) {
			return fmt.Errorf("op %d: %w", from+i, err)
		}
	}
	return nil
}

// tailSegment returns the newest WAL segment and its size.
func tailSegment(t *testing.T, dir string) (string, int64) {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s (err=%v)", dir, err)
	}
	sort.Strings(segs)
	tail := segs[len(segs)-1]
	st, err := os.Stat(tail)
	if err != nil {
		t.Fatal(err)
	}
	return tail, st.Size()
}

// TestCrashRecoveryRandomized is the core acceptance property: for every
// injected crash point, reopening the WAL directory yields a graph equal to
// the shadow graph of the applied prefix.
func TestCrashRecoveryRandomized(t *testing.T) {
	cases := []struct {
		name          string
		seed          int64
		ops           int
		snapshotEvery int
		segmentBytes  int64
	}{
		{"plain", 1, 40, 0, 0},
		{"plain2", 2, 40, 0, 0},
		{"smallSegments", 3, 50, 0, 512},
		{"snapshots", 4, 50, 7, 0},
		{"snapshotsSmallSegments", 5, 60, 5, 512},
		{"expireHeavy", 6, 60, 9, 1024},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ops := genOps(tc.seed, tc.ops)
			rng := rand.New(rand.NewSource(tc.seed * 7919))
			// Crash after a random prefix, several times over the same script.
			for trial := 0; trial < 4; trial++ {
				k := 1 + rng.Intn(len(ops))
				dir := t.TempDir()
				cfg := DurableConfig{
					WAL:           wal.Options{Policy: wal.SyncAlways, SegmentBytes: tc.segmentBytes},
					SnapshotEvery: tc.snapshotEvery,
				}
				d := openDurable(t, dir, cfg)
				if err := applyDurable(d, ops, 0, k); err != nil {
					t.Fatal(err)
				}
				d.Crash()

				shadow := applyShadow(t, ops, k)
				d2 := openDurable(t, dir, cfg)
				d2.View(func(g *Graph) { requireSameGraph(t, shadow, g) })

				// The reopened graph accepts the remainder of the script and
				// still matches the full shadow.
				if err := applyDurable(d2, ops, k, len(ops)); err != nil {
					t.Fatal(err)
				}
				full := applyShadow(t, ops, len(ops))
				d2.View(func(g *Graph) { requireSameGraph(t, full, g) })
				if err := d2.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestCrashRecoveryTornTail shears the final WAL frame at a random byte —
// the shape a torn write leaves behind — and requires recovery to land on
// the shadow of every op but the last.
func TestCrashRecoveryTornTail(t *testing.T) {
	for seed := int64(10); seed < 16; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ops := genOps(seed, 30)
			rng := rand.New(rand.NewSource(seed * 104729))
			k := 2 + rng.Intn(len(ops)-1)
			dir := t.TempDir()
			// No snapshots here: the final WAL record must be op k's record,
			// not a snapshot marker, for shadow(k-1) to be the right answer.
			cfg := DurableConfig{WAL: wal.Options{Policy: wal.SyncAlways}}
			d := openDurable(t, dir, cfg)
			if err := applyDurable(d, ops, 0, k-1); err != nil {
				t.Fatal(err)
			}
			tail, before := tailSegment(t, dir)
			if err := applyDurable(d, ops, k-1, k); err != nil {
				t.Fatal(err)
			}
			tail2, after := tailSegment(t, dir)
			d.Crash()

			// The final op's record occupies (before, after] of the tail
			// segment — or all of a fresh segment if rotation intervened.
			if tail2 != tail {
				tail, before = tail2, int64(16) // header only
			}
			if after <= before {
				t.Fatalf("tail did not grow: %d -> %d", before, after)
			}
			cut := before + rng.Int63n(after-before) // in [before, after): always tears the record
			if err := os.Truncate(tail, cut); err != nil {
				t.Fatal(err)
			}

			shadow := applyShadow(t, ops, k-1)
			d2 := openDurable(t, dir, cfg)
			defer d2.Close()
			if k > 1 {
				ri := d2.Recovery()
				if cut > before && ri.TruncatedBytes == 0 {
					t.Fatalf("recovery reported no truncation for a torn tail (cut %d of %d)", cut, after)
				}
			}
			d2.View(func(g *Graph) { requireSameGraph(t, shadow, g) })
		})
	}
}

// TestCrashRecoveryMidLogCorruptionRefused flips a byte inside an early,
// acknowledged record. That is not a torn tail — recovery must refuse with
// wal.ErrCorrupt rather than silently dropping history.
func TestCrashRecoveryMidLogCorruptionRefused(t *testing.T) {
	for seed := int64(20); seed < 24; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			ops := genOps(seed, 25)
			dir := t.TempDir()
			cfg := DurableConfig{WAL: wal.Options{Policy: wal.SyncAlways}}
			d := openDurable(t, dir, cfg)
			if err := applyDurable(d, ops, 0, len(ops)); err != nil {
				t.Fatal(err)
			}
			if err := d.Close(); err != nil {
				t.Fatal(err)
			}
			// Damage the first record's payload: valid frames follow it.
			rng := rand.New(rand.NewSource(seed))
			segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
			sort.Strings(segs)
			flipByte(t, segs[0], 16+8+int64(rng.Intn(4)))
			if _, err := OpenDurable(dir, cfg); !errors.Is(err, wal.ErrCorrupt) {
				t.Fatalf("mid-log corruption: err = %v, want wal.ErrCorrupt", err)
			}
		})
	}
}

// flipByte XORs one byte of path in place.
func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xFF
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}
