package stream

import (
	"errors"
	"fmt"
	"sort"

	"github.com/tea-graph/tea/internal/temporal"
)

// Edge deletion is the extension §4.4 of the paper lists as future work
// ("deleting or changing vertices or edges are not supported. We plan to add
// support for these features"). The design keeps the HPAT segments intact:
//
//   - a deleted edge is tombstoned in its segment (bitmap + counter);
//   - sampling proposes from the unchanged segment tables and re-proposes
//     when it hits a tombstone — classic rejection against the live
//     sub-distribution, so live edges keep exactly their relative
//     probabilities;
//   - when tombstones accumulate past CompactionThreshold of a vertex's
//     edges, the vertex is compacted: segments are rebuilt without the dead
//     edges (amortized, like the LSM merges).
//
// A bounded retry loop plus an exact fallback scan keeps sampling correct
// even when almost everything is deleted.
//
// One documented approximation: rank-based weights (WeightLinearRank) are
// assigned when an edge is ingested and are not re-derived when an *older*
// edge is deleted, so surviving ranks may be off by the number of deleted
// elders until the vertex compacts (compaction recomputes ranks over the
// live set). Time-based and uniform weights are unaffected — they depend
// only on the edge itself.

// ErrEdgeNotFound is returned when a deletion cannot locate a live matching
// edge.
var ErrEdgeNotFound = errors.New("stream: edge not found (or already deleted)")

// CompactionThreshold is the tombstone fraction above which a vertex is
// rebuilt without its deleted edges.
const CompactionThreshold = 0.25

// deleteRetryCap bounds tombstone rejection before the exact fallback scan.
const deleteRetryCap = 64

// BatchError reports a batch mutation that stopped partway: operations
// before Applied succeeded and are in effect; the one at index Applied
// failed with Err. errors.Is/As see through to the cause.
type BatchError struct {
	// Applied is the count of batch entries applied before the failure —
	// equivalently, the index of the entry that failed.
	Applied int
	// Err is the failure for entry Applied.
	Err error
}

func (e *BatchError) Error() string {
	return fmt.Sprintf("stream: batch entry %d failed (first %d applied): %v", e.Applied, e.Applied, e.Err)
}

func (e *BatchError) Unwrap() error { return e.Err }

// DeleteEdges tombstones the given edges (matched by exact src, dst, and
// time; one occurrence per request entry). The first unmatched edge aborts
// with a *BatchError wrapping ErrEdgeNotFound and reporting how many entries
// of the batch were applied. Deletions are idempotent while the tombstones
// survive — re-deleting an already-deleted edge is a no-op — so retrying the
// whole batch after fixing the offending entry is safe. (Compaction
// eventually discards tombstones, after which a re-delete of that edge
// reports ErrEdgeNotFound again; retry promptly.)
func (g *Graph) DeleteEdges(edges []temporal.Edge) error {
	for i, e := range edges {
		if err := g.deleteOne(e); err != nil {
			return &BatchError{Applied: i, Err: fmt.Errorf("%w: %v", err, e)}
		}
	}
	return nil
}

func (g *Graph) deleteOne(e temporal.Edge) error {
	if int(e.Src) >= len(g.verts) {
		return ErrEdgeNotFound
	}
	vs := &g.verts[e.Src]
	tombstoned := false
	for si := range vs.segs {
		s := &vs.segs[si]
		if s.len() == 0 || e.Time > s.newestTime() || e.Time < s.oldestTime() {
			continue
		}
		// Times are newest-first within a segment: find the run with this
		// timestamp, then match the destination among live slots.
		lo := sort.Search(s.len(), func(i int) bool { return s.ts[i] <= e.Time })
		for i := lo; i < s.len() && s.ts[i] == e.Time; i++ {
			if s.dst[i] != e.Dst {
				continue
			}
			if s.isDeleted(i) {
				// An exact match that is already tombstoned: remember it so a
				// retried batch treats the re-delete as an idempotent no-op
				// instead of a spurious ErrEdgeNotFound.
				tombstoned = true
				continue
			}
			s.tombstone(i)
			vs.deleted++
			g.numDeleted++
			g.numEdges-- // NumEdges reports live edges
			g.maybeCompact(e.Src)
			return nil
		}
	}
	if tombstoned {
		return nil
	}
	return ErrEdgeNotFound
}

// isDeleted reports whether slot i is tombstoned.
func (s *segment) isDeleted(i int) bool {
	return s.dead != nil && s.dead[i]
}

// tombstone marks slot i deleted.
func (s *segment) tombstone(i int) {
	if s.dead == nil {
		s.dead = make([]bool, s.len())
	}
	s.dead[i] = true
	s.deadCount++
}

// liveWithin counts live edges among the k newest slots of the segment.
func (s *segment) liveWithin(k int) int {
	if s.deadCount == 0 {
		return k
	}
	live := k
	for i := 0; i < k; i++ {
		if s.dead[i] {
			live--
		}
	}
	return live
}

// maybeCompact rebuilds the vertex without tombstones once they pass the
// threshold.
func (g *Graph) maybeCompact(u temporal.Vertex) {
	vs := &g.verts[u]
	if vs.degree == 0 || float64(vs.deleted) < CompactionThreshold*float64(vs.degree) {
		return
	}
	g.CompactVertex(u)
}

// CompactVertex eagerly rebuilds u's segments without tombstoned edges.
// Usually invoked automatically; exposed for tests and maintenance tooling.
func (g *Graph) CompactVertex(u temporal.Vertex) {
	if int(u) >= len(g.verts) {
		return
	}
	vs := &g.verts[u]
	if vs.deleted == 0 {
		return
	}
	dst := make([]temporal.Vertex, 0, vs.degree-vs.deleted)
	ts := make([]temporal.Time, 0, vs.degree-vs.deleted)
	for i := len(vs.segs) - 1; i >= 0; i-- {
		s := &vs.segs[i]
		for j := 0; j < s.len(); j++ {
			if !s.isDeleted(j) {
				dst = append(dst, s.dst[j])
				ts = append(ts, s.ts[j])
			}
		}
	}
	g.numDeleted -= vs.deleted
	vs.deleted = 0
	vs.degree = len(dst)
	if len(dst) == 0 {
		vs.segs = nil
		return
	}
	vs.segs = []segment{g.buildSegment(dst, ts, 0)}
	g.rescale(vs)
	if vs.degree > g.maxSeg {
		g.maxSeg = vs.degree
	}
	g.maybeGrowAux()
}

// NumDeleted returns the live tombstone count across the graph.
func (g *Graph) NumDeleted() int { return g.numDeleted }

// LiveDegree returns u's out-degree excluding tombstoned edges.
func (g *Graph) LiveDegree(u temporal.Vertex) int {
	if int(u) >= len(g.verts) {
		return 0
	}
	return g.verts[u].degree - g.verts[u].deleted
}

// LiveCandidateCount returns |Γ_after(u)| counting only live edges.
func (g *Graph) LiveCandidateCount(u temporal.Vertex, after temporal.Time) int {
	if int(u) >= len(g.verts) {
		return 0
	}
	vs := &g.verts[u]
	count := 0
	for i := len(vs.segs) - 1; i >= 0; i-- {
		s := &vs.segs[i]
		if s.oldestTime() > after {
			count += s.len() - s.deadCount
			continue
		}
		k := sort.Search(s.len(), func(j int) bool { return s.ts[j] <= after })
		count += s.liveWithin(k)
		break
	}
	return count
}
