// Package stream implements TEA's streaming graph support (§3.5): batched
// addition of strictly newer edges and vertices with incremental HPAT
// maintenance.
//
// Each appended batch becomes a new per-vertex HPAT segment. Because arriving
// edges always carry later timestamps, a temporal candidate set spans a run
// of newest segments (fully) plus at most one partially-covered older
// segment — so sampling composes an ITS across segment totals with the
// per-segment HPAT draw. Segments are merged LSM-style (a segment absorbs its
// elder when it reaches the elder's size), realizing Figure 7's "grow the
// hierarchy" with amortized O(log) rebuild work instead of the naive
// rebuild-from-scratch the paper's Figure 13d compares against.
package stream

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/tea-graph/tea/internal/hpat"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

// ErrStaleBatch is returned when a batch contains an edge not newer than the
// stream's current frontier; §3.5 supports additions only.
var ErrStaleBatch = errors.New("stream: batch edge is not newer than the current frontier")

// ErrCustomWeight mirrors the baseline restriction: streaming needs to
// re-derive weights on merges, which the built-in kinds support.
var ErrCustomWeight = errors.New("stream: custom weight functions are not supported in streaming mode")

// segment is one contiguous run of a vertex's out-edges, newest first, with
// its own HPAT. scale converts the segment-relative weight total into the
// vertex-global scale (exponential weights are normalized per segment to
// stay in floating-point range; the per-segment factor exp(λ·Δt) restores
// comparability).
type segment struct {
	dst   []temporal.Vertex
	ts    []temporal.Time
	tab   *hpat.Table
	scale float64
	// dead tombstones deleted edges (see delete.go); nil until a deletion
	// touches the segment.
	dead      []bool
	deadCount int
}

func (s *segment) len() int { return len(s.dst) }

// newestTime returns the segment's latest timestamp.
func (s *segment) newestTime() temporal.Time { return s.ts[0] }

// oldestTime returns the segment's earliest timestamp.
func (s *segment) oldestTime() temporal.Time { return s.ts[len(s.ts)-1] }

type vertexState struct {
	segs    []segment // oldest first
	degree  int       // slots including tombstones
	deleted int       // tombstoned slots
}

// Graph is a streaming temporal graph: an initial (possibly empty) edge set
// plus batches of strictly newer edges. It supports temporal-walk sampling
// directly, with per-vertex incremental HPAT segments.
type Graph struct {
	spec       sampling.WeightSpec
	lambda     float64
	verts      []vertexState
	numEdges   int
	frontier   temporal.Time // latest time seen; batches must exceed it
	hasEdges   bool
	minTime    temporal.Time // reference for linear-time weights
	aux        *hpat.AuxIndex
	maxSeg     int // largest segment length, tracked for the shared aux index
	numDeleted int // live tombstones across all vertices
}

// Config parameterizes a streaming graph.
type Config struct {
	// Weight selects the temporal weight; custom functions are rejected.
	Weight sampling.WeightSpec
	// NumVertices pre-sizes the vertex space; batches may still grow it.
	NumVertices int
	// MinTime anchors linear-time weights; defaults to the first batch's
	// earliest timestamp.
	MinTime *temporal.Time
}

// New creates an empty streaming graph.
func New(cfg Config) (*Graph, error) {
	if cfg.Weight.Custom != nil {
		return nil, ErrCustomWeight
	}
	lambda := cfg.Weight.Lambda
	if lambda == 0 {
		lambda = 1
	}
	g := &Graph{
		spec:     cfg.Weight,
		lambda:   lambda,
		verts:    make([]vertexState, cfg.NumVertices),
		frontier: temporal.MinTime,
	}
	if cfg.MinTime != nil {
		g.minTime = *cfg.MinTime
		g.hasEdges = true // minTime is pinned; batches won't move it
	}
	return g, nil
}

// NumVertices returns the current vertex-space size.
func (g *Graph) NumVertices() int { return len(g.verts) }

// NumEdges returns the number of live edges: appended, minus deleted, minus
// expired.
func (g *Graph) NumEdges() int { return g.numEdges }

// Frontier returns the latest timestamp in the stream.
func (g *Graph) Frontier() temporal.Time { return g.frontier }

// Degree returns the current out-degree of u (0 for unseen vertices).
func (g *Graph) Degree(u temporal.Vertex) int {
	if int(u) >= len(g.verts) {
		return 0
	}
	return g.verts[u].degree
}

// Segments returns the current segment count of u; exposed for tests and the
// Figure 13d experiment.
func (g *Graph) Segments(u temporal.Vertex) int {
	if int(u) >= len(g.verts) {
		return 0
	}
	return len(g.verts[u].segs)
}

// AppendBatch ingests a batch of edges, all strictly newer than every edge
// already in the stream (the edge-stream model of §2.1/§3.5). The batch may
// reference vertices beyond the current space; the space grows. Within the
// batch, edges may arrive in any order.
func (g *Graph) AppendBatch(edges []temporal.Edge) error {
	if len(edges) == 0 {
		return nil
	}
	batchMin := edges[0].Time
	maxV := temporal.Vertex(0)
	for _, e := range edges {
		if e.Time <= g.frontier {
			return fmt.Errorf("%w: edge %v vs frontier %d", ErrStaleBatch, e, g.frontier)
		}
		if e.Time < batchMin {
			batchMin = e.Time
		}
		if e.Src > maxV {
			maxV = e.Src
		}
		if e.Dst > maxV {
			maxV = e.Dst
		}
	}
	if int(maxV) >= len(g.verts) {
		grown := make([]vertexState, int(maxV)+1)
		copy(grown, g.verts)
		g.verts = grown
	}
	if !g.hasEdges {
		g.minTime = batchMin
		g.hasEdges = true
	}

	// Group the batch by source, newest-first within each source.
	bySrc := map[temporal.Vertex][]temporal.Edge{}
	for _, e := range edges {
		bySrc[e.Src] = append(bySrc[e.Src], e)
	}
	for src, es := range bySrc {
		sort.Slice(es, func(i, j int) bool {
			if es[i].Time != es[j].Time {
				return es[i].Time > es[j].Time
			}
			return es[i].Dst < es[j].Dst
		})
		g.appendVertexRun(src, es)
	}
	for _, e := range edges {
		if e.Time > g.frontier {
			g.frontier = e.Time
		}
	}
	g.numEdges += len(edges)
	g.maybeGrowAux()
	return nil
}

// appendVertexRun adds one vertex's newest-first run as a fresh segment and
// applies the LSM merge policy.
func (g *Graph) appendVertexRun(src temporal.Vertex, es []temporal.Edge) {
	vs := &g.verts[src]
	dst := make([]temporal.Vertex, len(es))
	ts := make([]temporal.Time, len(es))
	for i, e := range es {
		dst[i] = e.Dst
		ts[i] = e.Time
	}
	seg := g.buildSegment(dst, ts, vs.degree)
	vs.segs = append(vs.segs, seg)
	vs.degree += len(es)
	// LSM policy: a newer segment at least as large as its elder absorbs it.
	for len(vs.segs) > 1 {
		n := len(vs.segs)
		if vs.segs[n-1].len() < vs.segs[n-2].len() {
			break
		}
		merged, dropped := g.mergeSegments(&vs.segs[n-2], &vs.segs[n-1], vs.degree-vs.segs[n-1].len()-vs.segs[n-2].len())
		vs.segs = vs.segs[:n-2]
		vs.segs = append(vs.segs, merged)
		vs.degree -= dropped
		vs.deleted -= dropped
		g.numDeleted -= dropped
	}
	g.rescale(vs)
	if top := vs.segs[len(vs.segs)-1].len(); top > g.maxSeg {
		g.maxSeg = top
	}
}

// buildSegment constructs a segment whose edges (newest first) sit above
// olderCount existing edges of the vertex (needed for rank weights).
func (g *Graph) buildSegment(dst []temporal.Vertex, ts []temporal.Time, olderCount int) segment {
	n := len(dst)
	w := make([]float64, n)
	switch g.spec.Kind {
	case sampling.WeightUniform:
		for i := range w {
			w[i] = 1
		}
	case sampling.WeightLinearTime:
		for i := range w {
			w[i] = float64(ts[i]-g.minTime) + 1
		}
	case sampling.WeightLinearRank:
		// Rank counted from the oldest edge of the vertex: stable as newer
		// edges arrive. Newest-first position i has rank olderCount + n - i.
		for i := range w {
			w[i] = float64(olderCount + n - i)
		}
	case sampling.WeightExponential:
		newest := ts[0]
		for i := range w {
			w[i] = math.Exp(g.lambda * float64(ts[i]-newest))
		}
	}
	return segment{dst: dst, ts: ts, tab: hpat.NewTable(w), scale: 1}
}

// mergeSegments rebuilds older+newer into one segment (Figure 7's hierarchy
// growth), dropping any tombstoned slots so deletions are never resurrected.
// olderCount is the number of vertex edge slots older than both; dropped
// returns how many tombstones were compacted away.
func (g *Graph) mergeSegments(older, newer *segment, olderCount int) (segment, int) {
	dst := make([]temporal.Vertex, 0, older.len()+newer.len())
	ts := make([]temporal.Time, 0, older.len()+newer.len())
	dropped := 0
	for _, s := range []*segment{newer, older} {
		for i := 0; i < s.len(); i++ {
			if s.isDeleted(i) {
				dropped++
				continue
			}
			dst = append(dst, s.dst[i])
			ts = append(ts, s.ts[i])
		}
	}
	return g.buildSegment(dst, ts, olderCount), dropped
}

// rescale refreshes every segment's cross-segment scale factor after the
// frontier moved. Only exponential weights need scaling; the factor is
// exp(λ·(segNewest − vertexNewest)) so that scale·Total reproduces Eq. 3's
// ratios across segments.
func (g *Graph) rescale(vs *vertexState) {
	if g.spec.Kind != sampling.WeightExponential || len(vs.segs) == 0 {
		return
	}
	vertexNewest := vs.segs[len(vs.segs)-1].newestTime()
	for i := range vs.segs {
		vs.segs[i].scale = math.Exp(g.lambda * float64(vs.segs[i].newestTime()-vertexNewest))
	}
}

// maybeGrowAux keeps a shared auxiliary index that covers the largest
// segment; grown geometrically so amortized cost stays negligible.
func (g *Graph) maybeGrowAux() {
	if g.aux == nil || g.aux.MaxSize() < g.maxSeg {
		size := 1
		for size < g.maxSeg {
			size *= 2
		}
		g.aux = hpat.BuildAuxIndex(size)
	}
}

// CandidateCount returns |Γ_after(u)|, spanning segments.
func (g *Graph) CandidateCount(u temporal.Vertex, after temporal.Time) int {
	if int(u) >= len(g.verts) {
		return 0
	}
	vs := &g.verts[u]
	count := 0
	for i := len(vs.segs) - 1; i >= 0; i-- {
		s := &vs.segs[i]
		if s.oldestTime() > after {
			count += s.len()
			continue
		}
		// Partial segment: binary search within its newest-first times.
		k := sort.Search(s.len(), func(j int) bool { return s.ts[j] <= after })
		count += k
		break
	}
	return count
}

// SampleStep draws the next edge for a walker at u with arrival time after.
// evaluated counts slots examined. ok is false at temporal dead ends.
func (g *Graph) SampleStep(u temporal.Vertex, after temporal.Time, r *xrand.Rand) (dst temporal.Vertex, at temporal.Time, evaluated int64, ok bool) {
	if int(u) >= len(g.verts) {
		return 0, 0, 0, false
	}
	vs := &g.verts[u]
	// Collect per-segment candidate counts and scaled totals, newest first.
	type segPick struct {
		seg   *segment
		k     int
		total float64
	}
	var picks [64]segPick
	n := 0
	grand := 0.0
	for i := len(vs.segs) - 1; i >= 0; i-- {
		s := &vs.segs[i]
		k := s.len()
		partial := false
		if !(s.oldestTime() > after) {
			k = sort.Search(s.len(), func(j int) bool { return s.ts[j] <= after })
			partial = true
		}
		if k > 0 {
			total := s.scale * s.tab.Total(k)
			picks[n] = segPick{seg: s, k: k, total: total}
			n++
			grand += total
			evaluated++
		}
		if partial {
			break
		}
		if n == len(picks) {
			break // pathological segment count; bounded defensively
		}
	}
	if !(grand > 0) {
		return 0, 0, evaluated, false
	}
	// Tombstone rejection (delete.go): segment totals still include deleted
	// edges, so a draw that lands on one is re-proposed from scratch — live
	// edges keep their exact relative probabilities. Vertices without
	// tombstones accept on the first draw.
	for trial := 0; trial < deleteRetryCap; trial++ {
		x := r.Range(grand)
		acc := 0.0
		chosen := picks[n-1]
		for i := 0; i < n; i++ {
			acc += picks[i].total
			if x < acc {
				chosen = picks[i]
				break
			}
		}
		idx, ev, sok := chosen.seg.tab.Sample(chosen.k, g.aux, r)
		evaluated += ev
		if !sok {
			return 0, 0, evaluated, false
		}
		if chosen.seg.isDeleted(idx) {
			continue
		}
		return chosen.seg.dst[idx], chosen.seg.ts[idx], evaluated, true
	}
	// Nearly everything in range is tombstoned: exact scan over the live
	// candidates of every overlapping segment.
	liveTotal := 0.0
	for i := 0; i < n; i++ {
		p := picks[i]
		w := p.seg.tab.Weights()
		for j := 0; j < p.k; j++ {
			if !p.seg.isDeleted(j) {
				liveTotal += p.seg.scale * w[j]
			}
			evaluated++
		}
	}
	if !(liveTotal > 0) {
		return 0, 0, evaluated, false
	}
	x := r.Range(liveTotal)
	acc := 0.0
	for i := 0; i < n; i++ {
		p := picks[i]
		w := p.seg.tab.Weights()
		for j := 0; j < p.k; j++ {
			if p.seg.isDeleted(j) {
				continue
			}
			acc += p.seg.scale * w[j]
			if x < acc {
				return p.seg.dst[j], p.seg.ts[j], evaluated, true
			}
		}
	}
	// Floating-point edge: return the last live candidate.
	for i := n - 1; i >= 0; i-- {
		p := picks[i]
		for j := p.k - 1; j >= 0; j-- {
			if !p.seg.isDeleted(j) {
				return p.seg.dst[j], p.seg.ts[j], evaluated, true
			}
		}
	}
	return 0, 0, evaluated, false
}

// Walk runs one temporal walk of at most length steps from src starting with
// arrival time start (use temporal.MinTime for "all out-edges eligible").
func (g *Graph) Walk(src temporal.Vertex, start temporal.Time, length int, r *xrand.Rand) ([]temporal.Vertex, []temporal.Time) {
	verts := []temporal.Vertex{src}
	var times []temporal.Time
	u, t := src, start
	for step := 0; step < length; step++ {
		dst, at, _, ok := g.SampleStep(u, t, r)
		if !ok {
			break
		}
		verts = append(verts, dst)
		times = append(times, at)
		u, t = dst, at
	}
	return verts, times
}

// WalkSeeded is Walk with a self-contained deterministic random stream,
// usable without constructing an engine RNG (the public-API entry point).
func (g *Graph) WalkSeeded(src temporal.Vertex, start temporal.Time, length int, seed uint64) ([]temporal.Vertex, []temporal.Time) {
	return g.Walk(src, start, length, xrand.New(seed))
}

// Snapshot materializes the current stream as an immutable temporal.Graph.
func (g *Graph) Snapshot() (*temporal.Graph, error) {
	edges := make([]temporal.Edge, 0, g.numEdges)
	for u := range g.verts {
		for si := range g.verts[u].segs {
			s := &g.verts[u].segs[si]
			for i := range s.dst {
				if s.isDeleted(i) {
					continue
				}
				edges = append(edges, temporal.Edge{Src: temporal.Vertex(u), Dst: s.dst[i], Time: s.ts[i]})
			}
		}
	}
	return temporal.FromEdges(edges, temporal.WithNumVertices(len(g.verts)))
}

// MemoryBytes reports the footprint of all segments plus the shared
// auxiliary index.
func (g *Graph) MemoryBytes() int64 {
	total := int64(0)
	for i := range g.verts {
		for si := range g.verts[i].segs {
			s := &g.verts[i].segs[si]
			total += int64(s.len())*(4+8) + s.tab.MemoryBytes() + 8
			if s.dead != nil {
				total += int64(len(s.dead))
			}
		}
	}
	if g.aux != nil {
		total += g.aux.MemoryBytes()
	}
	return total
}

// RebuildVertex rebuilds u's entire adjacency into a single segment, the
// naive "rebuild HPAT from scratch" strategy Figure 13d compares the
// incremental update against. Exposed so experiments can time it.
func (g *Graph) RebuildVertex(u temporal.Vertex) {
	if int(u) >= len(g.verts) {
		return
	}
	vs := &g.verts[u]
	if len(vs.segs) == 0 {
		return
	}
	dst := make([]temporal.Vertex, 0, vs.degree)
	ts := make([]temporal.Time, 0, vs.degree)
	for i := len(vs.segs) - 1; i >= 0; i-- {
		dst = append(dst, vs.segs[i].dst...)
		ts = append(ts, vs.segs[i].ts...)
	}
	vs.segs = []segment{g.buildSegment(dst, ts, 0)}
	g.rescale(vs)
	if vs.degree > g.maxSeg {
		g.maxSeg = vs.degree
	}
	g.maybeGrowAux()
}
