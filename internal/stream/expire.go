package stream

import (
	"github.com/tea-graph/tea/internal/temporal"
)

// Sliding-window support: real event-stream deployments bound the graph to
// a recency window (e.g. "the last 90 days"). ExpireBefore drops every edge
// older than a horizon. Because segments are time-ordered runs, whole
// segments older than the horizon are dropped in O(1) per segment and only
// one boundary segment per vertex needs filtering — no tombstones, no
// rejection cost afterward.

// ExpireBefore removes every edge with time < horizon from the stream and
// returns the number of edges dropped. Weights of the surviving edges keep
// their original values (rank weights keep their ingestion ranks until the
// vertex is next rebuilt, matching DeleteEdges' documented approximation).
func (g *Graph) ExpireBefore(horizon temporal.Time) int {
	dropped := 0
	for u := range g.verts {
		dropped += g.expireVertex(temporal.Vertex(u), horizon)
	}
	g.numEdges -= dropped
	return dropped
}

func (g *Graph) expireVertex(u temporal.Vertex, horizon temporal.Time) int {
	vs := &g.verts[u]
	if len(vs.segs) == 0 {
		return 0
	}
	kept := vs.segs[:0]
	droppedEdges := 0
	droppedTombstones := 0
	for si := range vs.segs {
		s := &vs.segs[si]
		switch {
		case s.oldestTime() >= horizon:
			kept = append(kept, *s) // entirely inside the window
		case s.newestTime() < horizon:
			// Entirely expired: account and drop.
			droppedEdges += s.len() - s.deadCount
			droppedTombstones += s.deadCount
		default:
			// Boundary segment: keep the newest-first prefix with
			// time >= horizon, filtering tombstones along the way.
			dst := make([]temporal.Vertex, 0, s.len())
			ts := make([]temporal.Time, 0, s.len())
			for i := 0; i < s.len(); i++ {
				if s.ts[i] < horizon {
					// Everything from here on is older (newest-first order).
					for j := i; j < s.len(); j++ {
						if s.isDeleted(j) {
							droppedTombstones++
						} else {
							droppedEdges++
						}
					}
					break
				}
				if s.isDeleted(i) {
					droppedTombstones++
					continue
				}
				dst = append(dst, s.dst[i])
				ts = append(ts, s.ts[i])
			}
			if len(dst) > 0 {
				kept = append(kept, g.buildSegment(dst, ts, 0))
			}
		}
	}
	vs.segs = append([]segment(nil), kept...)
	vs.degree -= droppedEdges + droppedTombstones
	vs.deleted -= droppedTombstones
	g.numDeleted -= droppedTombstones
	g.rescale(vs)
	return droppedEdges
}
