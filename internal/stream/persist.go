package stream

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"path/filepath"

	"github.com/tea-graph/tea/internal/chksum"
	"github.com/tea-graph/tea/internal/hpat"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/vfs"
)

// Snapshot serialization for the durable streaming graph: an exact,
// segment-level image of the in-memory structure. Unlike Snapshot() (which
// materializes an immutable temporal.Graph for the read-only engine), the
// durable snapshot preserves segment boundaries, per-edge weights, scales,
// and tombstone bitmaps verbatim, so a recovered graph is structurally
// identical to the one that wrote it — seeded walks replay the same paths,
// which is what lets the crash-recovery tests compare against a shadow
// graph exactly.

// snapMagic identifies the serialized stream snapshot ("TEA snapshot v1").
var snapMagic = [8]byte{'T', 'E', 'A', 'S', 'N', 'A', 'P', '1'}

// ErrSnapshotCorrupt is returned when a snapshot is malformed or fails its
// CRC-32C integrity footer.
var ErrSnapshotCorrupt = errors.New("stream: corrupt snapshot")

// snapMaxCount bounds any single stored count; larger values are damage.
const snapMaxCount = 1 << 31

// WriteSnapshot serializes the graph's full segment structure plus the WAL
// LSN the image covers. The payload is CRC-32C-footered (internal/chksum),
// so recovery detects torn or damaged snapshots instead of loading them.
func (g *Graph) WriteSnapshot(w io.Writer, lsn uint64) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	hw := chksum.NewWriter(bw)
	var scratch [16]byte
	wr := func(p []byte) error {
		_, err := hw.Write(p)
		return err
	}
	wu64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		return wr(scratch[:8])
	}
	if err := wr(snapMagic[:]); err != nil {
		return err
	}
	if err := wu64(lsn); err != nil {
		return err
	}
	head := []uint64{
		uint64(g.spec.Kind),
		math.Float64bits(g.spec.Lambda),
		boolU64(g.hasEdges),
		uint64(g.minTime),
		uint64(g.frontier),
		uint64(len(g.verts)),
		uint64(g.numEdges),
		uint64(g.numDeleted),
		uint64(g.maxSeg),
	}
	for _, v := range head {
		if err := wu64(v); err != nil {
			return err
		}
	}
	for u := range g.verts {
		vs := &g.verts[u]
		binary.LittleEndian.PutUint32(scratch[0:], uint32(vs.degree))
		binary.LittleEndian.PutUint32(scratch[4:], uint32(vs.deleted))
		binary.LittleEndian.PutUint32(scratch[8:], uint32(len(vs.segs)))
		if err := wr(scratch[:12]); err != nil {
			return err
		}
		for si := range vs.segs {
			if err := writeSegment(hw, &vs.segs[si]); err != nil {
				return err
			}
		}
	}
	footer := hw.Footer()
	if err := wr(footer[:]); err != nil {
		return err
	}
	return bw.Flush()
}

func writeSegment(w io.Writer, s *segment) error {
	n := s.len()
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(n))
	hasDead := byte(0)
	if s.dead != nil {
		hasDead = 1
	}
	hdr[4] = hasDead
	binary.LittleEndian.PutUint64(hdr[8:], math.Float64bits(s.scale))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, n*8)
	for i, d := range s.dst {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(d))
	}
	if _, err := w.Write(buf[:n*4]); err != nil {
		return err
	}
	for i, t := range s.ts {
		binary.LittleEndian.PutUint64(buf[i*8:], uint64(t))
	}
	if _, err := w.Write(buf[:n*8]); err != nil {
		return err
	}
	for i, v := range s.tab.Weights() {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	if _, err := w.Write(buf[:n*8]); err != nil {
		return err
	}
	if hasDead == 1 {
		bits := make([]byte, (n+7)/8)
		for i, d := range s.dead {
			if d {
				bits[i/8] |= 1 << (i % 8)
			}
		}
		if _, err := w.Write(bits); err != nil {
			return err
		}
	}
	return nil
}

// ReadSnapshot deserializes a snapshot written by WriteSnapshot, returning
// the reconstructed graph and the LSN it covers.
func ReadSnapshot(r io.Reader) (*Graph, uint64, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	hr := chksum.NewReader(br)
	var scratch [16]byte
	rd := func(p []byte) error {
		if _, err := io.ReadFull(hr, p); err != nil {
			return fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
		return nil
	}
	ru64 := func() (uint64, error) {
		if err := rd(scratch[:8]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:8]), nil
	}
	if err := rd(scratch[:8]); err != nil {
		return nil, 0, err
	}
	if [8]byte(scratch[:8]) != snapMagic {
		return nil, 0, fmt.Errorf("%w: bad magic %x", ErrSnapshotCorrupt, scratch[:8])
	}
	lsn, err := ru64()
	if err != nil {
		return nil, 0, err
	}
	var head [9]uint64
	for i := range head {
		if head[i], err = ru64(); err != nil {
			return nil, 0, err
		}
	}
	numVerts := int(head[5])
	if numVerts < 0 || numVerts > snapMaxCount {
		return nil, 0, fmt.Errorf("%w: vertex count %d", ErrSnapshotCorrupt, numVerts)
	}
	g := &Graph{
		spec:       sampling.WeightSpec{Kind: sampling.WeightKind(head[0]), Lambda: math.Float64frombits(head[1])},
		hasEdges:   head[2] != 0,
		minTime:    temporal.Time(head[3]),
		frontier:   temporal.Time(head[4]),
		verts:      make([]vertexState, numVerts),
		numEdges:   int(head[6]),
		numDeleted: int(head[7]),
		maxSeg:     int(head[8]),
	}
	g.lambda = g.spec.Lambda
	if g.lambda == 0 {
		g.lambda = 1
	}
	for u := 0; u < numVerts; u++ {
		if err := rd(scratch[:12]); err != nil {
			return nil, 0, err
		}
		vs := &g.verts[u]
		vs.degree = int(binary.LittleEndian.Uint32(scratch[0:]))
		vs.deleted = int(binary.LittleEndian.Uint32(scratch[4:]))
		segCount := int(binary.LittleEndian.Uint32(scratch[8:]))
		if segCount > snapMaxCount || vs.degree > snapMaxCount {
			return nil, 0, fmt.Errorf("%w: vertex %d counts", ErrSnapshotCorrupt, u)
		}
		if segCount > 0 {
			vs.segs = make([]segment, segCount)
		}
		for si := 0; si < segCount; si++ {
			if err := readSegment(hr, &vs.segs[si]); err != nil {
				return nil, 0, err
			}
		}
	}
	if _, err := hr.Verify(br); err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	g.maybeGrowAux()
	return g, lsn, nil
}

func readSegment(r io.Reader, s *segment) error {
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return fmt.Errorf("%w: segment header: %v", ErrSnapshotCorrupt, err)
	}
	n := int(binary.LittleEndian.Uint32(hdr[0:]))
	if n <= 0 || n > snapMaxCount {
		return fmt.Errorf("%w: segment length %d", ErrSnapshotCorrupt, n)
	}
	hasDead := hdr[4] == 1
	s.scale = math.Float64frombits(binary.LittleEndian.Uint64(hdr[8:]))
	buf := make([]byte, n*8)
	if _, err := io.ReadFull(r, buf[:n*4]); err != nil {
		return fmt.Errorf("%w: segment dst: %v", ErrSnapshotCorrupt, err)
	}
	s.dst = make([]temporal.Vertex, n)
	for i := range s.dst {
		s.dst[i] = temporal.Vertex(binary.LittleEndian.Uint32(buf[i*4:]))
	}
	if _, err := io.ReadFull(r, buf[:n*8]); err != nil {
		return fmt.Errorf("%w: segment ts: %v", ErrSnapshotCorrupt, err)
	}
	s.ts = make([]temporal.Time, n)
	for i := range s.ts {
		s.ts[i] = temporal.Time(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	if _, err := io.ReadFull(r, buf[:n*8]); err != nil {
		return fmt.Errorf("%w: segment weights: %v", ErrSnapshotCorrupt, err)
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	s.tab = hpat.NewTable(w)
	if hasDead {
		bits := make([]byte, (n+7)/8)
		if _, err := io.ReadFull(r, bits); err != nil {
			return fmt.Errorf("%w: segment tombstones: %v", ErrSnapshotCorrupt, err)
		}
		s.dead = make([]bool, n)
		for i := range s.dead {
			if bits[i/8]&(1<<(i%8)) != 0 {
				s.dead[i] = true
				s.deadCount++
			}
		}
	}
	return nil
}

// WriteSnapshotFile writes the snapshot atomically on the real filesystem;
// see WriteSnapshotFileFS.
func WriteSnapshotFile(path string, g *Graph, lsn uint64) error {
	return WriteSnapshotFileFS(vfs.OS, path, g, lsn)
}

// WriteSnapshotFileFS writes the snapshot atomically: a temp file in the same
// directory, fsynced, then renamed over path, then the directory fsynced —
// a crash mid-write leaves the previous snapshot intact. A failed directory
// sync is an error: until the directory entry is durable, the rename itself
// can be lost by a crash, which would silently resurrect the prior snapshot.
func WriteSnapshotFileFS(fsys vfs.FS, path string, g *Graph, lsn uint64) error {
	if fsys == nil {
		fsys = vfs.OS
	}
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, ".snapshot-*")
	if err != nil {
		return fmt.Errorf("stream: snapshot: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return fmt.Errorf("stream: snapshot: %w", err)
	}
	if err := g.WriteSnapshot(f, lsn); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("stream: snapshot: %w", err)
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return fmt.Errorf("stream: snapshot: %w", err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		return fmt.Errorf("stream: snapshot: sync dir: %w", err)
	}
	return nil
}

// ReadSnapshotFile loads a snapshot written by WriteSnapshotFile.
func ReadSnapshotFile(path string) (*Graph, uint64, error) {
	return ReadSnapshotFileFS(vfs.OS, path)
}

// ReadSnapshotFileFS loads a snapshot from fsys.
func ReadSnapshotFileFS(fsys vfs.FS, path string) (*Graph, uint64, error) {
	if fsys == nil {
		fsys = vfs.OS
	}
	f, err := vfs.Open(fsys, path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	return ReadSnapshot(f)
}

// SnapshotFileLSN reads just the header of a snapshot file and returns the
// WAL LSN it claims to cover, without deserializing (or verifying) the body.
// Recovery uses it to order legacy unnumbered snapshots among generations.
func SnapshotFileLSN(fsys vfs.FS, path string) (uint64, error) {
	if fsys == nil {
		fsys = vfs.OS
	}
	f, err := vfs.Open(fsys, path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	var hdr [16]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	if [8]byte(hdr[:8]) != snapMagic {
		return 0, fmt.Errorf("%w: bad magic %x", ErrSnapshotCorrupt, hdr[:8])
	}
	return binary.LittleEndian.Uint64(hdr[8:]), nil
}

// VerifySnapshotFile re-reads a snapshot and checks its magic and CRC-32C
// footer without rebuilding the graph — the scrubber's integrity pass. bill,
// when non-nil, is called with each chunk's byte count so the read can be
// rate-limited; a non-nil return aborts. Returns the covered LSN.
func VerifySnapshotFile(fsys vfs.FS, path string, bill func(int) error) (uint64, error) {
	if fsys == nil {
		fsys = vfs.OS
	}
	f, err := vfs.Open(fsys, path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	body := st.Size() - chksum.FooterSize
	if body < 16 {
		return 0, fmt.Errorf("%w: %d bytes is too short", ErrSnapshotCorrupt, st.Size())
	}
	hr := chksum.NewReader(io.LimitReader(f, body))
	var hdr [16]byte
	if _, err := io.ReadFull(hr, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	if [8]byte(hdr[:8]) != snapMagic {
		return 0, fmt.Errorf("%w: bad magic %x", ErrSnapshotCorrupt, hdr[:8])
	}
	lsn := binary.LittleEndian.Uint64(hdr[8:])
	if bill != nil {
		if err := bill(len(hdr)); err != nil {
			return 0, err
		}
	}
	buf := make([]byte, 256<<10)
	for {
		n, err := hr.Read(buf)
		if n > 0 && bill != nil {
			if berr := bill(n); berr != nil {
				return 0, berr
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
		}
	}
	if _, err := hr.Verify(f); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	return lsn, nil
}

func boolU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
