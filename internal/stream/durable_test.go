package stream

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/wal"
)

func openDurable(t *testing.T, dir string, cfg DurableConfig) *DurableGraph {
	t.Helper()
	d, err := OpenDurable(dir, cfg)
	if err != nil {
		t.Fatalf("OpenDurable(%s): %v", dir, err)
	}
	return d
}

func TestDurableLogThenApplyAndReopen(t *testing.T) {
	dir := t.TempDir()
	cfg := DurableConfig{WAL: wal.Options{Policy: wal.SyncAlways}}
	d := openDurable(t, dir, cfg)
	for i := 0; i < 20; i++ {
		if err := d.AppendBatch([]temporal.Edge{
			{Src: temporal.Vertex(i % 4), Dst: temporal.Vertex(i + 1), Time: temporal.Time(i + 1)},
		}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := d.DeleteEdges([]temporal.Edge{{Src: 0, Dst: 1, Time: 1}}); err != nil {
		t.Fatal(err)
	}
	if dropped, err := d.ExpireBefore(3); err != nil || dropped == 0 {
		t.Fatalf("expire: dropped %d err %v", dropped, err)
	}
	edges, frontier := d.NumEdges(), d.Frontier()
	var want *Graph
	d.View(func(g *Graph) { want = g })
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: pure WAL replay (no snapshot yet) reproduces the exact state.
	d2 := openDurable(t, dir, cfg)
	defer d2.Close()
	if d2.NumEdges() != edges || d2.Frontier() != frontier {
		t.Fatalf("reopened: %d edges frontier %d, want %d / %d", d2.NumEdges(), d2.Frontier(), edges, frontier)
	}
	ri := d2.Recovery()
	if ri.Replayed != 22 || ri.SnapshotLSN != 0 {
		t.Fatalf("recovery = %+v, want 22 replayed, no snapshot", ri)
	}
	d2.View(func(g *Graph) { requireSameGraph(t, want, g) })

	// And ingest continues where it left off.
	if err := d2.AppendBatch([]temporal.Edge{{Src: 0, Dst: 9, Time: frontier + 1}}); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

func TestDurableSnapshotTrimsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := DurableConfig{
		WAL:           wal.Options{Policy: wal.SyncAlways, SegmentBytes: 512},
		SnapshotEvery: 5,
	}
	d := openDurable(t, dir, cfg)
	for i := 0; i < 32; i++ {
		if err := d.AppendBatch([]temporal.Edge{
			{Src: temporal.Vertex(i % 3), Dst: temporal.Vertex(i + 1), Time: temporal.Time(i + 1)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	var want *Graph
	d.View(func(g *Graph) { want = g })
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if gens, _ := filepath.Glob(filepath.Join(dir, "snapshot.*")); len(gens) == 0 {
		t.Fatal("no snapshot generation written")
	}

	d2 := openDurable(t, dir, cfg)
	defer d2.Close()
	ri := d2.Recovery()
	if ri.SnapshotLSN == 0 {
		t.Fatal("reopen ignored the snapshot")
	}
	if ri.Replayed >= 32 {
		t.Fatalf("replayed %d records despite snapshot at LSN %d", ri.Replayed, ri.SnapshotLSN)
	}
	d2.View(func(g *Graph) { requireSameGraph(t, want, g) })
}

func TestDurableSnapshotConfigMismatch(t *testing.T) {
	dir := t.TempDir()
	cfg := DurableConfig{
		Graph:         Config{Weight: sampling.WeightSpec{Kind: sampling.WeightExponential, Lambda: 0.1}},
		WAL:           wal.Options{Policy: wal.SyncNever},
		SnapshotEvery: 1,
	}
	d := openDurable(t, dir, cfg)
	if err := d.AppendBatch([]temporal.Edge{{Src: 0, Dst: 1, Time: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := OpenDurable(dir, DurableConfig{
		Graph: Config{Weight: sampling.WeightSpec{Kind: sampling.WeightLinearTime}},
		WAL:   wal.Options{Policy: wal.SyncNever},
	})
	if !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("mismatched weight config: err = %v, want ErrSnapshotMismatch", err)
	}
}

func TestDurableConcurrentWritersGroupCommit(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, DurableConfig{WAL: wal.Options{Policy: wal.SyncAlways}})
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	var tsrc atomic.Int64 // shared clock: the frontier rule wants strictly increasing times
	errs := make(chan error, writers*perWriter)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				// A writer can draw t then lose the commit race to a later
				// draw, making its batch stale; redraw and retry — the retry
				// also exercises deterministic replay of failed records.
				for {
					e := temporal.Edge{
						Src:  temporal.Vertex(w),
						Dst:  temporal.Vertex(i + 1),
						Time: temporal.Time(tsrc.Add(1)),
					}
					err := d.AppendBatch([]temporal.Edge{e})
					if err == nil {
						break
					}
					if !errors.Is(err, ErrStaleBatch) {
						errs <- fmt.Errorf("writer %d append %d: %w", w, i, err)
						return
					}
				}
			}
		}(w)
	}
	// Readers stay live during ingest.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(seed uint64) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					d.WalkSeeded(0, temporal.MinTime, 8, seed)
					d.Stats()
				}
			}
		}(uint64(r + 1))
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := d.NumEdges(); got != writers*perWriter {
		t.Fatalf("NumEdges = %d, want %d", got, writers*perWriter)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay after concurrent ingest still lands every edge.
	d2 := openDurable(t, dir, DurableConfig{WAL: wal.Options{}})
	defer d2.Close()
	if got := d2.NumEdges(); got != writers*perWriter {
		t.Fatalf("recovered NumEdges = %d, want %d", got, writers*perWriter)
	}
	for w := 0; w < writers; w++ {
		if got := d2.View; got == nil {
			t.Fatal("nil View")
		}
		d2.View(func(g *Graph) {
			if deg := g.LiveDegree(temporal.Vertex(w)); deg != perWriter {
				t.Fatalf("writer %d degree %d, want %d", w, deg, perWriter)
			}
		})
	}
}

func TestDurableDegradedIsSticky(t *testing.T) {
	dir := t.TempDir()
	// A small segment size forces rotation, whose new-segment creation fails
	// once the directory is gone.
	d := openDurable(t, dir, DurableConfig{WAL: wal.Options{Policy: wal.SyncAlways, SegmentBytes: 2048}})
	if err := d.AppendBatch([]temporal.Edge{{Src: 0, Dst: 1, Time: 1}}); err != nil {
		t.Fatal(err)
	}
	// Pull the directory out from under the log: the next append's segment
	// write or fsync fails and the graph must degrade, not corrupt.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	for _, s := range segs {
		os.Remove(s)
	}
	os.Remove(filepath.Join(dir, "snapshot"))
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	// Exhaust until a write actually fails (page cache may absorb a few).
	var err error
	for i := 0; i < 10000; i++ {
		err = d.AppendBatch([]temporal.Edge{{Src: 0, Dst: 1, Time: temporal.Time(i + 2)}})
		if err != nil {
			break
		}
	}
	if !errors.Is(err, ErrDegraded) {
		t.Skipf("could not provoke a WAL failure on this filesystem (err=%v)", err)
	}
	if d.Err() == nil {
		t.Fatal("Err() nil after degradation")
	}
	// Sticky: every subsequent mutation fails fast.
	if err := d.AppendBatch([]temporal.Edge{{Src: 0, Dst: 2, Time: 99999}}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("append after degradation: %v", err)
	}
	if _, err := d.ExpireBefore(1); !errors.Is(err, ErrDegraded) {
		t.Fatalf("expire after degradation: %v", err)
	}
	// Reads still work.
	_ = d.Stats()
	d.Close()
}

func TestDurableClosedRejectsMutations(t *testing.T) {
	d := openDurable(t, t.TempDir(), DurableConfig{})
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.AppendBatch([]temporal.Edge{{Src: 0, Dst: 1, Time: 1}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestDurableBatchErrorPropagates(t *testing.T) {
	d := openDurable(t, t.TempDir(), DurableConfig{WAL: wal.Options{Policy: wal.SyncNever}})
	defer d.Close()
	var seed []temporal.Edge
	for i := 1; i <= 16; i++ {
		seed = append(seed, temporal.Edge{Src: 0, Dst: temporal.Vertex(i), Time: temporal.Time(i)})
	}
	if err := d.AppendBatch(seed); err != nil {
		t.Fatal(err)
	}
	err := d.DeleteEdges([]temporal.Edge{
		{Src: 0, Dst: 1, Time: 1},
		{Src: 0, Dst: 99, Time: 99},
	})
	var be *BatchError
	if !errors.As(err, &be) || be.Applied != 1 {
		t.Fatalf("err = %v, want *BatchError with Applied=1", err)
	}
	// Stale batches surface their sentinel through the durable path too.
	if err := d.AppendBatch([]temporal.Edge{{Src: 0, Dst: 1, Time: 1}}); !errors.Is(err, ErrStaleBatch) {
		t.Fatalf("stale append err = %v, want ErrStaleBatch", err)
	}
}

func TestDurableRejectsCustomWeight(t *testing.T) {
	_, err := OpenDurable(t.TempDir(), DurableConfig{
		Graph: Config{Weight: sampling.WeightSpec{Custom: func(temporal.Time) float64 { return 1 }}},
	})
	if !errors.Is(err, ErrCustomWeight) {
		t.Fatalf("custom weight: err = %v, want ErrCustomWeight", err)
	}
}
