package stream

import (
	"testing"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

func TestExpireBeforeBasics(t *testing.T) {
	g := mustNew(t, Config{Weight: sampling.WeightSpec{Kind: sampling.WeightUniform}})
	for i := 1; i <= 10; i++ {
		if err := g.AppendBatch([]temporal.Edge{{Src: 0, Dst: temporal.Vertex(i), Time: temporal.Time(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	dropped := g.ExpireBefore(6)
	if dropped != 5 {
		t.Fatalf("dropped = %d, want 5", dropped)
	}
	if g.NumEdges() != 5 || g.Degree(0) != 5 || g.LiveDegree(0) != 5 {
		t.Fatalf("after expire: E=%d deg=%d live=%d", g.NumEdges(), g.Degree(0), g.LiveDegree(0))
	}
	if g.CandidateCount(0, temporal.MinTime) != 5 {
		t.Fatalf("candidates = %d", g.CandidateCount(0, temporal.MinTime))
	}
	// Sampling must only reach surviving destinations (6..10).
	r := xrand.New(1)
	for i := 0; i < 5000; i++ {
		dst, at, _, ok := g.SampleStep(0, temporal.MinTime, r)
		if !ok {
			t.Fatal("sample failed")
		}
		if at < 6 || dst < 6 {
			t.Fatalf("expired edge sampled: dst=%d t=%d", dst, at)
		}
	}
}

func TestExpireEverything(t *testing.T) {
	g := mustNew(t, Config{})
	if err := g.AppendBatch([]temporal.Edge{{Src: 0, Dst: 1, Time: 1}, {Src: 1, Dst: 2, Time: 2}}); err != nil {
		t.Fatal(err)
	}
	if dropped := g.ExpireBefore(100); dropped != 2 {
		t.Fatalf("dropped = %d", dropped)
	}
	if g.NumEdges() != 0 || g.Degree(0) != 0 || g.Degree(1) != 0 {
		t.Fatal("edges survived total expiration")
	}
	r := xrand.New(2)
	if _, _, _, ok := g.SampleStep(0, temporal.MinTime, r); ok {
		t.Fatal("sampled from an expired vertex")
	}
	// The stream remains usable: newer batches append normally.
	if err := g.AppendBatch([]temporal.Edge{{Src: 0, Dst: 1, Time: 101}}); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("post-expiry append: E=%d", g.NumEdges())
	}
}

func TestExpireNoOp(t *testing.T) {
	g := mustNew(t, Config{})
	if err := g.AppendBatch([]temporal.Edge{{Src: 0, Dst: 1, Time: 5}}); err != nil {
		t.Fatal(err)
	}
	if dropped := g.ExpireBefore(5); dropped != 0 {
		t.Fatalf("dropped = %d on a window covering everything", dropped)
	}
	if g.NumEdges() != 1 {
		t.Fatal("no-op expiration changed state")
	}
}

func TestExpireInteractsWithDeletions(t *testing.T) {
	g := mustNew(t, Config{Weight: sampling.WeightSpec{Kind: sampling.WeightUniform}})
	edges := make([]temporal.Edge, 12)
	for i := range edges {
		edges[i] = temporal.Edge{Src: 0, Dst: temporal.Vertex(i + 1), Time: temporal.Time(i + 1)}
	}
	for _, e := range edges {
		if err := g.AppendBatch([]temporal.Edge{e}); err != nil {
			t.Fatal(err)
		}
	}
	// Tombstone two edges, one on each side of the horizon: the older one is
	// swept out with its segment, the newer one is filtered while rebuilding
	// the boundary segment — neither may resurface.
	if err := g.DeleteEdges([]temporal.Edge{
		{Src: 0, Dst: 2, Time: 2},
		{Src: 0, Dst: 10, Time: 10},
	}); err != nil {
		t.Fatal(err)
	}
	liveBefore := g.NumEdges()
	if liveBefore != 10 {
		t.Fatalf("live before = %d", liveBefore)
	}
	dropped := g.ExpireBefore(7)
	// Live edges with time < 7: times 1,3,4,5,6 (2 was already deleted) = 5.
	if dropped != 5 {
		t.Fatalf("dropped = %d, want 5", dropped)
	}
	// Live survivors: times 7,8,9,11,12 (10 deleted) = 5.
	if g.NumEdges() != 5 || g.LiveDegree(0) != 5 {
		t.Fatalf("after expire: E=%d live=%d", g.NumEdges(), g.LiveDegree(0))
	}
	r := xrand.New(3)
	for i := 0; i < 3000; i++ {
		dst, at, _, ok := g.SampleStep(0, temporal.MinTime, r)
		if !ok {
			t.Fatal("sample failed")
		}
		if at < 7 || dst == 10 {
			t.Fatalf("invalid sample dst=%d t=%d", dst, at)
		}
	}
	snap, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.NumEdges() != 5 {
		t.Fatalf("snapshot E=%d", snap.NumEdges())
	}
}
