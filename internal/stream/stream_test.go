package stream

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
	"github.com/tea-graph/tea/internal/xrand"
)

func mustNew(t *testing.T, cfg Config) *Graph {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewRejectsCustomWeight(t *testing.T) {
	_, err := New(Config{Weight: sampling.WeightSpec{Custom: func(temporal.Time) float64 { return 1 }}})
	if !errors.Is(err, ErrCustomWeight) {
		t.Fatalf("err = %v", err)
	}
}

func TestAppendBatchBasics(t *testing.T) {
	g := mustNew(t, Config{Weight: sampling.WeightSpec{Kind: sampling.WeightUniform}})
	if err := g.AppendBatch([]temporal.Edge{{Src: 0, Dst: 1, Time: 1}, {Src: 0, Dst: 2, Time: 2}}); err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 || g.Degree(0) != 2 {
		t.Fatalf("V=%d E=%d deg0=%d", g.NumVertices(), g.NumEdges(), g.Degree(0))
	}
	if g.Frontier() != 2 {
		t.Fatalf("frontier %d", g.Frontier())
	}
	if g.Degree(99) != 0 || g.Segments(99) != 0 {
		t.Fatal("unseen vertex should be degree 0")
	}
}

func TestStaleBatchRejected(t *testing.T) {
	g := mustNew(t, Config{})
	if err := g.AppendBatch([]temporal.Edge{{Src: 0, Dst: 1, Time: 5}}); err != nil {
		t.Fatal(err)
	}
	err := g.AppendBatch([]temporal.Edge{{Src: 0, Dst: 2, Time: 5}})
	if !errors.Is(err, ErrStaleBatch) {
		t.Fatalf("err = %v", err)
	}
	err = g.AppendBatch([]temporal.Edge{{Src: 0, Dst: 2, Time: 3}})
	if !errors.Is(err, ErrStaleBatch) {
		t.Fatalf("err = %v", err)
	}
}

func TestEmptyBatchNoOp(t *testing.T) {
	g := mustNew(t, Config{})
	if err := g.AppendBatch(nil); err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 0 {
		t.Fatal("empty batch changed state")
	}
}

func TestCandidateCountAcrossSegments(t *testing.T) {
	g := mustNew(t, Config{Weight: sampling.WeightSpec{Kind: sampling.WeightUniform}})
	// Three separate batches to force multiple segments before merging.
	for _, b := range [][]temporal.Edge{
		{{Src: 0, Dst: 1, Time: 1}, {Src: 0, Dst: 2, Time: 2}, {Src: 0, Dst: 3, Time: 3}, {Src: 0, Dst: 4, Time: 4}},
		{{Src: 0, Dst: 5, Time: 5}, {Src: 0, Dst: 6, Time: 6}},
		{{Src: 0, Dst: 7, Time: 7}},
	} {
		if err := g.AppendBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	for after, want := range map[temporal.Time]int{0: 7, 1: 6, 3: 4, 4: 3, 5: 2, 6: 1, 7: 0, 100: 0} {
		if got := g.CandidateCount(0, after); got != want {
			t.Errorf("CandidateCount(0,%d) = %d, want %d", after, got, want)
		}
	}
}

func TestLSMMergePolicy(t *testing.T) {
	g := mustNew(t, Config{})
	// Equal-size batches must keep merging into one segment.
	for i := 0; i < 8; i++ {
		if err := g.AppendBatch([]temporal.Edge{{Src: 0, Dst: 1, Time: temporal.Time(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	// After 8 singleton appends the LSM invariant keeps ≤ log2(8)+1 segments.
	if s := g.Segments(0); s > 4 {
		t.Fatalf("segments = %d after 8 singleton batches", s)
	}
	if g.Degree(0) != 8 {
		t.Fatalf("degree = %d", g.Degree(0))
	}
}

// Streaming sampling must match the static engine's distribution: build the
// same edges both ways and compare transition frequencies.
func TestStreamMatchesStaticDistribution(t *testing.T) {
	specs := []sampling.WeightSpec{
		{Kind: sampling.WeightUniform},
		{Kind: sampling.WeightLinearTime},
		{Kind: sampling.WeightLinearRank},
		sampling.Exponential(0.3),
	}
	edges := temporal.CommuteEdges()
	for _, spec := range specs {
		sg := mustNew(t, Config{Weight: spec, NumVertices: 10})
		// Stream the commute edges in time order, one batch per timestamp.
		for tm := temporal.Time(0); tm <= 7; tm++ {
			var batch []temporal.Edge
			for _, e := range edges {
				if e.Time == tm {
					batch = append(batch, e)
				}
			}
			if err := sg.AppendBatch(batch); err != nil {
				t.Fatal(err)
			}
		}
		static := temporal.CommuteGraph()
		w := testutil.Weights(t, static, spec)
		r := xrand.New(7)
		// Arrival at 7 from 8 (t=0): all 7 out-edges are candidates.
		want := append([]float64(nil), w.Vertex(7)...)
		counts := make([]float64, 8)
		const draws = 60000
		for i := 0; i < draws; i++ {
			dst, _, _, ok := sg.SampleStep(7, 0, r)
			if !ok {
				t.Fatalf("%v: stream sample failed", spec.Kind)
			}
			counts[dst]++
		}
		// Static weights are indexed newest-first: edge i goes to vertex 6-i.
		for i, wv := range want {
			expect := draws * wv / sum(want)
			got := counts[6-i]
			if math.Abs(got-expect) > 5*math.Sqrt(expect)+25 {
				t.Fatalf("%v: dst %d count %.0f, expect %.0f", spec.Kind, 6-i, got, expect)
			}
		}
	}
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

func TestExponentialCrossSegmentScaling(t *testing.T) {
	// Two segments with very different time ranges: the newer segment must
	// dominate exponentially, which only works if cross-segment scaling is
	// applied.
	g := mustNew(t, Config{Weight: sampling.Exponential(1)})
	if err := g.AppendBatch([]temporal.Edge{{Src: 0, Dst: 1, Time: 1}, {Src: 0, Dst: 2, Time: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := g.AppendBatch([]temporal.Edge{{Src: 0, Dst: 3, Time: 10}}); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(8)
	newer := 0
	const draws = 20000
	for i := 0; i < draws; i++ {
		dst, _, _, ok := g.SampleStep(0, temporal.MinTime, r)
		if !ok {
			t.Fatal("sample failed")
		}
		if dst == 3 {
			newer++
		}
	}
	// exp(0)/(exp(0)+exp(-8)+exp(-9)) ≈ 0.9995.
	if float64(newer)/draws < 0.995 {
		t.Fatalf("newest edge sampled only %d/%d times", newer, draws)
	}
}

func TestWalkRespectsTemporalOrder(t *testing.T) {
	g := mustNew(t, Config{Weight: sampling.WeightSpec{Kind: sampling.WeightUniform}})
	r := xrand.New(9)
	// Random-ish DAG stream.
	for i := 0; i < 50; i++ {
		e := temporal.Edge{
			Src:  temporal.Vertex(r.IntN(20)),
			Dst:  temporal.Vertex(r.IntN(20)),
			Time: temporal.Time(i + 1),
		}
		if err := g.AppendBatch([]temporal.Edge{e}); err != nil {
			t.Fatal(err)
		}
	}
	for src := temporal.Vertex(0); src < 20; src++ {
		verts, times := g.Walk(src, temporal.MinTime, 30, r)
		if len(verts) != len(times)+1 {
			t.Fatalf("walk shape %d/%d", len(verts), len(times))
		}
		for i := 1; i < len(times); i++ {
			if times[i] <= times[i-1] {
				t.Fatalf("non-increasing walk times %v", times)
			}
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	g := mustNew(t, Config{NumVertices: 10})
	// Stream commute edges in time order.
	edges := temporal.CommuteEdges()
	for tm := temporal.Time(0); tm <= 7; tm++ {
		var batch []temporal.Edge
		for _, e := range edges {
			if e.Time == tm {
				batch = append(batch, e)
			}
		}
		if err := g.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	want := temporal.CommuteGraph()
	if snap.NumEdges() != want.NumEdges() || snap.NumVertices() != want.NumVertices() {
		t.Fatalf("snapshot shape V=%d E=%d", snap.NumVertices(), snap.NumEdges())
	}
	for u := temporal.Vertex(0); u < 10; u++ {
		if snap.Degree(u) != want.Degree(u) {
			t.Fatalf("degree mismatch at %d", u)
		}
	}
}

func TestRebuildVertexPreservesDistribution(t *testing.T) {
	g := mustNew(t, Config{Weight: sampling.Exponential(0.5)})
	for i := 0; i < 20; i++ {
		if err := g.AppendBatch([]temporal.Edge{{Src: 0, Dst: temporal.Vertex(i + 1), Time: temporal.Time(i + 1)}}); err != nil {
			t.Fatal(err)
		}
	}
	r := xrand.New(10)
	before := map[temporal.Vertex]int{}
	for i := 0; i < 30000; i++ {
		dst, _, _, ok := g.SampleStep(0, temporal.MinTime, r)
		if !ok {
			t.Fatal("sample failed")
		}
		before[dst]++
	}
	g.RebuildVertex(0)
	if g.Segments(0) != 1 {
		t.Fatalf("segments after rebuild = %d", g.Segments(0))
	}
	after := map[temporal.Vertex]int{}
	for i := 0; i < 30000; i++ {
		dst, _, _, ok := g.SampleStep(0, temporal.MinTime, r)
		if !ok {
			t.Fatal("sample failed")
		}
		after[dst]++
	}
	// Dominant destination (newest edge, vertex 20) must agree within noise.
	b, a := float64(before[20]), float64(after[20])
	if math.Abs(b-a) > 5*math.Sqrt(b)+50 {
		t.Fatalf("rebuild changed distribution: %v vs %v", before[20], after[20])
	}
}

func TestDeadEndSampling(t *testing.T) {
	g := mustNew(t, Config{})
	if err := g.AppendBatch([]temporal.Edge{{Src: 0, Dst: 1, Time: 1}}); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(11)
	if _, _, _, ok := g.SampleStep(0, 1, r); ok {
		t.Fatal("sampled past the frontier")
	}
	if _, _, _, ok := g.SampleStep(1, temporal.MinTime, r); ok {
		t.Fatal("sampled from a sink vertex")
	}
	if _, _, _, ok := g.SampleStep(42, 0, r); ok {
		t.Fatal("sampled from an unseen vertex")
	}
}

func TestPinnedMinTime(t *testing.T) {
	pin := temporal.Time(0)
	g := mustNew(t, Config{Weight: sampling.WeightSpec{Kind: sampling.WeightLinearTime}, MinTime: &pin})
	if err := g.AppendBatch([]temporal.Edge{{Src: 0, Dst: 1, Time: 10}, {Src: 0, Dst: 2, Time: 20}}); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(12)
	// Weights 11 vs 21 relative to the pinned origin.
	newer := 0
	const draws = 40000
	for i := 0; i < draws; i++ {
		dst, _, _, ok := g.SampleStep(0, temporal.MinTime, r)
		if !ok {
			t.Fatal("sample failed")
		}
		if dst == 2 {
			newer++
		}
	}
	want := 21.0 / 32.0
	if math.Abs(float64(newer)/draws-want) > 0.02 {
		t.Fatalf("pinned linear-time ratio %.3f, want %.3f", float64(newer)/draws, want)
	}
}

func TestMemoryBytesGrows(t *testing.T) {
	g := mustNew(t, Config{})
	if err := g.AppendBatch([]temporal.Edge{{Src: 0, Dst: 1, Time: 1}}); err != nil {
		t.Fatal(err)
	}
	m1 := g.MemoryBytes()
	for i := 2; i <= 100; i++ {
		if err := g.AppendBatch([]temporal.Edge{{Src: 0, Dst: 1, Time: temporal.Time(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if g.MemoryBytes() <= m1 {
		t.Fatal("memory did not grow with edges")
	}
}

func BenchmarkAppendBatch100(b *testing.B) {
	benchAppend(b, 100)
}

func BenchmarkAppendBatch10000(b *testing.B) {
	benchAppend(b, 10000)
}

func benchAppend(b *testing.B, batch int) {
	g, err := New(Config{Weight: sampling.Exponential(0.001)})
	if err != nil {
		b.Fatal(err)
	}
	next := temporal.Time(1)
	edges := make([]temporal.Edge, batch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range edges {
			edges[j] = temporal.Edge{Src: 0, Dst: temporal.Vertex(j % 100), Time: next}
			next++
		}
		if err := g.AppendBatch(edges); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: any valid append sequence round-trips through Snapshot with the
// same degrees and candidate counts (deletions excluded here; covered in
// delete_test.go).
func TestStreamSnapshotProperty(t *testing.T) {
	f := func(raw []uint16, seed uint64) bool {
		g, err := New(Config{Weight: sampling.Exponential(0.01)})
		if err != nil {
			return false
		}
		r := xrand.New(seed)
		next := temporal.Time(1)
		var all []temporal.Edge
		for _, v := range raw {
			n := int(v%5) + 1
			batch := make([]temporal.Edge, n)
			for i := range batch {
				batch[i] = temporal.Edge{
					Src:  temporal.Vertex(r.IntN(16)),
					Dst:  temporal.Vertex(r.IntN(16)),
					Time: next,
				}
				next++
			}
			if err := g.AppendBatch(batch); err != nil {
				return false
			}
			all = append(all, batch...)
		}
		if len(all) == 0 {
			return g.NumEdges() == 0
		}
		snap, err := g.Snapshot()
		if err != nil {
			return false
		}
		want, err := temporal.FromEdges(all, temporal.WithNumVertices(g.NumVertices()))
		if err != nil {
			return false
		}
		if snap.NumEdges() != want.NumEdges() {
			return false
		}
		for u := 0; u < want.NumVertices(); u++ {
			if snap.Degree(temporal.Vertex(u)) != want.Degree(temporal.Vertex(u)) {
				return false
			}
			if g.Degree(temporal.Vertex(u)) != want.Degree(temporal.Vertex(u)) {
				return false
			}
			for _, at := range []temporal.Time{0, next / 2, next} {
				if g.CandidateCount(temporal.Vertex(u), at) != want.CandidateCount(temporal.Vertex(u), at) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
