package stream

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/vfs"
	"github.com/tea-graph/tea/internal/wal"
)

// The fault-injection chaos harness. Where recovery_test.go crashes the
// process at clean record boundaries, these tests fail the *device*: ENOSPC,
// failed fsyncs, torn writes, and crashes in the middle of a snapshot rename,
// all scripted through vfs.FaultFS. The acceptance property is the same —
// after the fault, reopening the directory must yield a graph structurally
// equal (identical seeded walks) to the shadow graph of exactly the
// operations whose durability the engine still owes.

// applyUntilFault drives ops sequentially through d and returns how many were
// acknowledged before an infrastructure failure stopped the stream (-1 fault
// never fired: every op acked).
func applyUntilFault(t *testing.T, d *DurableGraph, ops []crashOp) (acked int, faulted bool) {
	t.Helper()
	for i, op := range ops {
		var err error
		switch op.kind {
		case 0:
			err = d.AppendBatch(op.edges)
		case 1:
			err = d.DeleteEdges(op.edges)
		case 2:
			_, err = d.ExpireBefore(op.horizon)
		}
		if errors.Is(err, ErrDegraded) || errors.Is(err, ErrClosed) {
			return i, true
		}
		// Op-level failures (stale batch, edge not found) are scripted into
		// the ops and deterministic; the record was durably logged.
	}
	return len(ops), false
}

// TestFaultMatrixShadowEquality is the randomized fault matrix: for every
// fault point — WAL write ENOSPC, torn WAL write, failed WAL fsync, snapshot
// temp-file ENOSPC (create and fsync), crash during snapshot rename — inject
// the fault at a random operation offset, run until the stream degrades,
// hard-crash, reopen on a healthy filesystem, and require exact shadow-graph
// equality for the prefix the engine owes. Then finish the script on the
// reopened graph and require full equality, proving the survivor is not
// subtly wedged.
func TestFaultMatrixShadowEquality(t *testing.T) {
	// residue is how many extra ops beyond the acked prefix the recovered
	// graph must contain. A failed fsync leaves the record bytes in the file
	// (only the acknowledgement was withheld), so replay legitimately applies
	// one more op; every other fault leaves no replayable residue.
	cases := []struct {
		name    string
		fault   vfs.Fault
		residue int
	}{
		{"walWriteENOSPC", vfs.Fault{Op: vfs.OpWrite, Path: "wal-", Once: true}, 0},
		{"walWriteTorn", vfs.Fault{Op: vfs.OpWrite, Path: "wal-", Torn: true, Once: true}, 0},
		{"walSyncFail", vfs.Fault{Op: vfs.OpSync, Path: "wal-", Once: true}, 1},
		{"snapCreateENOSPC", vfs.Fault{Op: vfs.OpCreate, Path: ".snapshot-", Once: true}, 0},
		{"snapSyncENOSPC", vfs.Fault{Op: vfs.OpSync, Path: ".snapshot-", Once: true}, 0},
		{"snapRenameCrash", vfs.Fault{Op: vfs.OpRename, Path: "snapshot.", Crash: true, Once: true}, 0},
	}
	for ci, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for trial := 0; trial < 3; trial++ {
				seed := int64(100 + 10*ci + trial)
				ops := genOps(seed, 40)
				rng := rand.New(rand.NewSource(seed * 31337))
				dir := t.TempDir()
				ffs := vfs.NewFaultFS(vfs.OS, seed)

				cfg := DurableConfig{
					WAL:           wal.Options{Policy: wal.SyncAlways},
					SnapshotEvery: 5,
					SnapshotKeep:  2,
					HealInterval:  -1, // no self-healing: this test is about recovery
					FS:            ffs,
				}
				d := openDurable(t, dir, cfg)
				// Arm after opening so recovery/segment-creation stays clean;
				// the fault fires partway through the op stream.
				fault := tc.fault
				fault.After = rng.Intn(6)
				ffs.Inject(fault)

				acked, faulted := applyUntilFault(t, d, ops)
				d.Crash()
				if !faulted && ffs.Fired() == 0 {
					t.Fatalf("trial %d: fault never fired (acked %d)", trial, acked)
				}

				owed := acked
				if faulted {
					owed += tc.residue
				}
				shadow := applyShadow(t, ops, owed)
				clean := cfg
				clean.FS = nil // healthy disk for recovery
				d2 := openDurable(t, dir, clean)
				d2.View(func(g *Graph) { requireSameGraph(t, shadow, g) })

				// The survivor accepts the rest of the script.
				if err := applyDurable(d2, ops, owed, len(ops)); err != nil {
					t.Fatalf("trial %d: reopened graph rejected remainder: %v", trial, err)
				}
				full := applyShadow(t, ops, len(ops))
				d2.View(func(g *Graph) { requireSameGraph(t, full, g) })
				if err := d2.Close(); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// snapshotGens globs the retained snapshot generation files, oldest first.
func snapshotGens(t *testing.T, dir string) []string {
	t.Helper()
	gens, err := filepath.Glob(filepath.Join(dir, "snapshot.*"))
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, g := range gens {
		if filepath.Ext(g) != ".corrupt" {
			out = append(out, g)
		}
	}
	sort.Strings(out) // zero-padded LSNs: lexicographic = numeric
	return out
}

// TestCorruptLatestSnapshotFallsBack plants a bit flip in the newest snapshot
// generation. Reopening must quarantine it (rename to *.corrupt), boot from
// the previous generation, replay the longer WAL suffix, and land on the
// exact full shadow.
func TestCorruptLatestSnapshotFallsBack(t *testing.T) {
	ops := genOps(77, 40)
	dir := t.TempDir()
	cfg := DurableConfig{
		WAL:           wal.Options{Policy: wal.SyncAlways, SegmentBytes: 256},
		SnapshotEvery: 5,
		SnapshotKeep:  2,
	}
	d := openDurable(t, dir, cfg)
	if err := applyDurable(d, ops, 0, len(ops)); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	gens := snapshotGens(t, dir)
	if len(gens) < 2 {
		t.Fatalf("want >=2 snapshot generations, got %v", gens)
	}
	newest := gens[len(gens)-1]
	flipByte(t, newest, 24) // inside the checksummed body

	d2 := openDurable(t, dir, cfg)
	defer d2.Close()
	if _, err := os.Stat(newest + ".corrupt"); err != nil {
		t.Fatalf("corrupt generation was not quarantined: %v", err)
	}
	if _, err := os.Stat(newest); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt generation still in place: %v", err)
	}
	if got, want := d2.Recovery().SnapshotLSN, snapshotPathLSN(t, gens[len(gens)-2]); got != want {
		t.Fatalf("recovered from snapshot LSN %d, want previous generation %d", got, want)
	}
	shadow := applyShadow(t, ops, len(ops))
	d2.View(func(g *Graph) { requireSameGraph(t, shadow, g) })
}

// snapshotPathLSN parses the LSN out of a generation filename.
func snapshotPathLSN(t *testing.T, path string) uint64 {
	t.Helper()
	var lsn uint64
	if _, err := fmt.Sscanf(filepath.Base(path), "snapshot.%d", &lsn); err != nil {
		t.Fatalf("bad generation name %s: %v", path, err)
	}
	return lsn
}

// TestAllSnapshotsCorruptRefusesPartialHistory corrupts every retained
// generation. With the WAL already trimmed past the oldest one, no replay can
// reconstruct full history — OpenDurable must refuse with ErrNoUsableSnapshot
// rather than silently serving a graph missing acknowledged writes.
func TestAllSnapshotsCorruptRefusesPartialHistory(t *testing.T) {
	ops := genOps(88, 48)
	dir := t.TempDir()
	cfg := DurableConfig{
		WAL:           wal.Options{Policy: wal.SyncAlways, SegmentBytes: 256},
		SnapshotEvery: 5,
		SnapshotKeep:  2,
	}
	d := openDurable(t, dir, cfg)
	if err := applyDurable(d, ops, 0, len(ops)); err != nil {
		t.Fatal(err)
	}
	if first := d.Log().FirstLSN(); first <= 1 {
		t.Fatalf("WAL was never trimmed (FirstLSN %d); tune SegmentBytes/ops", first)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	for _, gen := range snapshotGens(t, dir) {
		flipByte(t, gen, 24)
	}
	if _, err := OpenDurable(dir, cfg); !errors.Is(err, ErrNoUsableSnapshot) {
		t.Fatalf("all generations corrupt: err = %v, want ErrNoUsableSnapshot", err)
	}
}

// TestSnapshotENOSPCPreservesGenerationsAndHeals is the disk-full degradation
// contract: an ENOSPC during checkpoint must leave every prior generation
// intact and readable, keep reads serving, flip the graph into the degraded
// (read-only) state with a cause the serving layer can map to 507 — and once
// the device recovers, the heal loop must restore writability on its own.
func TestSnapshotENOSPCPreservesGenerationsAndHeals(t *testing.T) {
	ops := genOps(99, 60)
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 99)
	cfg := DurableConfig{
		WAL:           wal.Options{Policy: wal.SyncAlways},
		SnapshotEvery: 5,
		SnapshotKeep:  2,
		HealInterval:  20 * time.Millisecond,
		FS:            ffs,
	}
	d := openDurable(t, dir, cfg)
	defer d.Close()

	// Run far enough that generations exist, then fill the disk for snapshot
	// temp files only: WAL appends keep succeeding, checkpoints fail.
	if err := applyDurable(d, ops, 0, 30); err != nil {
		t.Fatal(err)
	}
	ffs.Inject(vfs.Fault{Op: vfs.OpCreate, Path: ".snapshot-"}) // sticky ENOSPC

	acked, faulted := applyUntilFault(t, d, ops[30:])
	if !faulted {
		t.Fatalf("stream never degraded (acked %d more ops)", acked)
	}
	if err := d.Err(); err == nil || !errors.Is(err, ErrDegraded) || !vfs.IsNoSpace(err) {
		t.Fatalf("degraded error = %v, want ErrDegraded wrapping ENOSPC", err)
	}

	// The failed checkpoint never prunes, so the generations from before the
	// fault are all still there — and must verify bit for bit.
	before := d.SnapshotPaths()
	if len(before) == 0 {
		t.Fatal("no snapshot generations survived the failed checkpoint")
	}
	for _, p := range before {
		if _, err := VerifySnapshotFile(nil, p, nil); err != nil {
			t.Fatalf("prior generation %s damaged by failed checkpoint: %v", filepath.Base(p), err)
		}
	}
	// Reads still serve the acked prefix exactly.
	shadow := applyShadow(t, ops, 30+acked)
	d.View(func(g *Graph) { requireSameGraph(t, shadow, g) })

	// Device recovers: the heal loop clears the degraded state by itself.
	ffs.Heal()
	deadline := time.Now().Add(5 * time.Second)
	for d.Err() != nil {
		if time.Now().After(deadline) {
			t.Fatal("degraded state did not clear after device healed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := d.AppendBatch([]temporal.Edge{{Src: 1, Dst: 2, Time: temporal.Time(1 << 40)}}); err != nil {
		t.Fatalf("write after heal: %v", err)
	}
}
