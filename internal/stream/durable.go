package stream

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/trace"
	"github.com/tea-graph/tea/internal/wal"
)

// DurableGraph wraps a streaming Graph with a write-ahead log so ingest
// survives crashes: every mutation (AppendBatch, DeleteEdges, ExpireBefore)
// is framed into the WAL — and, under the always policy, fsynced — before it
// is applied in memory. Mutations from concurrent callers are group-
// committed: a single committer goroutine drains the submission queue,
// writes the whole group with one WAL append (one fsync), then applies the
// operations in log order under the write lock, so the in-memory state and
// the log never disagree about ordering. Readers (walks, stats) take the
// read lock and keep running during ingest.
//
// Recovery is snapshot + log-suffix replay: OpenDurable loads the newest
// snapshot (exact segment-level image, CRC-verified), then replays every WAL
// record with a later LSN through the same code paths the live writes took.
// Operations that failed live (a stale batch, a delete of a missing edge)
// fail identically during replay — the log records intent, and application
// is deterministic — so the recovered graph is structurally identical to the
// pre-crash one. A torn WAL tail is truncated; mid-log corruption refuses
// with wal.ErrCorrupt.
//
// After the first WAL write or fsync failure the graph enters a sticky
// degraded state: reads keep working, every further mutation fails fast
// with ErrDegraded, and the failure is recorded in the flight recorder.

// ErrDegraded is returned by mutations after a WAL write or fsync failure.
// The wrapped cause is the first failure; the state is sticky because a log
// that lost a write can no longer promise recoverability.
var ErrDegraded = errors.New("stream: durable graph degraded (WAL write failed)")

// ErrClosed is returned by mutations on a closed durable graph.
var ErrClosed = errors.New("stream: durable graph closed")

// ErrSnapshotMismatch is returned when a snapshot on disk was written under
// a different weight configuration than the one the graph is opened with.
var ErrSnapshotMismatch = errors.New("stream: snapshot weight config does not match")

// snapshotName is the snapshot file inside the WAL directory.
const snapshotName = "snapshot"

// maxGroup bounds one group commit; queued writers beyond it wait for the
// next group.
const maxGroup = 128

// Group-commit, snapshot, and recovery metric families (the wal package owns
// the per-append and fsync families).
var (
	mGroupCommit     = metrics.Default.Histogram("tea_wal_group_commit_records")
	mSnapshots       = metrics.Default.Counter("tea_wal_snapshots_total")
	mSnapshotSeconds = metrics.Default.Histogram("tea_wal_snapshot_seconds")
	mRecoverySeconds = metrics.Default.Gauge("tea_wal_recovery_seconds")
	mReplayed        = metrics.Default.Gauge("tea_wal_recovery_replayed_records")
)

// DurableConfig parameterizes OpenDurable.
type DurableConfig struct {
	// Graph configures the in-memory stream (weight kind, initial sizing).
	// Must match the configuration of any snapshot already in the
	// directory, or OpenDurable fails with ErrSnapshotMismatch.
	Graph Config
	// WAL tunes the log (fsync policy, segment size). OnSyncError is owned
	// by the durable graph and must be left nil.
	WAL wal.Options
	// SnapshotEvery writes a snapshot (and trims the log) every N logged
	// mutations; 0 disables periodic snapshots.
	SnapshotEvery int
	// Tracer, when non-nil and enabled, receives recovery spans and
	// flight-recorder events for fsync errors and tail truncation.
	Tracer *trace.Tracer
}

// RecoveryInfo summarizes one recovery pass.
type RecoveryInfo struct {
	// Duration is the wall time of snapshot load plus replay.
	Duration time.Duration
	// SnapshotLSN is the LSN the loaded snapshot covered (0 = no snapshot).
	SnapshotLSN uint64
	// Replayed counts log records applied after the snapshot.
	Replayed uint64
	// Records counts all surviving records in the log.
	Records uint64
	// TruncatedBytes counts torn-tail bytes discarded by the WAL scan.
	TruncatedBytes int64
}

// DurableStats is a point-in-time summary for the serving layer.
type DurableStats struct {
	Vertices    int
	Edges       int
	Deleted     int
	MaxDegree   int
	TimeLo      temporal.Time
	TimeHi      temporal.Time
	MemoryBytes int64
	Weight      string
}

// ingestReq is one queued mutation awaiting group commit.
type ingestReq struct {
	typ     wal.RecordType
	payload []byte
	edges   []temporal.Edge
	horizon temporal.Time
	dropped int
	err     error
	done    chan struct{}
}

// DurableGraph is the write-ahead-logged streaming graph. One committer
// goroutine serializes mutations; readers run concurrently under RLock.
type DurableGraph struct {
	dir string
	cfg DurableConfig

	mu sync.RWMutex // guards g
	g  *Graph

	log   *wal.Log
	reqCh chan *ingestReq
	quit  chan struct{}
	wg    sync.WaitGroup

	closed   atomic.Bool
	quitOnce sync.Once

	errMu sync.Mutex
	err   error

	sinceSnap int
	snapLSN   uint64
	recovery  RecoveryInfo
	tctx      context.Context
}

// OpenDurable opens (creating if needed) a durable streaming graph rooted at
// dir, recovering whatever state the directory holds: snapshot, then WAL
// suffix replay. A torn WAL tail is repaired; mid-log corruption, a corrupt
// snapshot, or a weight-config mismatch refuse with an error.
func OpenDurable(dir string, cfg DurableConfig) (*DurableGraph, error) {
	if cfg.Graph.Weight.Custom != nil {
		return nil, ErrCustomWeight
	}
	d := &DurableGraph{
		dir:   dir,
		cfg:   cfg,
		reqCh: make(chan *ingestReq, 2*maxGroup),
		quit:  make(chan struct{}),
	}
	ctx := context.Background()
	var sp *trace.Span
	if cfg.Tracer.Enabled() {
		ctx = trace.WithTracer(ctx, cfg.Tracer)
		ctx, sp = cfg.Tracer.StartRoot(ctx, "wal.recovery", "")
	}
	d.tctx = ctx

	start := time.Now()
	walOpts := cfg.WAL
	walOpts.OnSyncError = func(err error) { d.fail(err) }
	log, err := wal.Open(dir, walOpts)
	if err != nil {
		if sp != nil {
			sp.SetError(err)
			sp.End()
		}
		return nil, err
	}
	d.log = log
	os.Remove(filepath.Join(dir, snapshotName+".tmp")) // pre-rename residue

	snapPath := filepath.Join(dir, snapshotName)
	if _, statErr := os.Stat(snapPath); statErr == nil {
		g, lsn, err := ReadSnapshotFile(snapPath)
		if err != nil {
			log.Close()
			return nil, err
		}
		if g.spec.Kind != cfg.Graph.Weight.Kind || g.spec.Lambda != cfg.Graph.Weight.Lambda {
			log.Close()
			return nil, fmt.Errorf("%w: snapshot %v/λ=%v, config %v/λ=%v",
				ErrSnapshotMismatch, g.spec.Kind, g.spec.Lambda, cfg.Graph.Weight.Kind, cfg.Graph.Weight.Lambda)
		}
		d.g = g
		d.snapLSN = lsn
	} else {
		g, err := New(cfg.Graph)
		if err != nil {
			log.Close()
			return nil, err
		}
		d.g = g
	}

	replayed := uint64(0)
	if err := log.Replay(func(rec wal.Record) error {
		if rec.LSN <= d.snapLSN {
			return nil
		}
		if err := d.applyRecord(rec); err != nil {
			return err
		}
		replayed++
		return nil
	}); err != nil {
		log.Close()
		return nil, err
	}

	wi := log.Recovery()
	d.recovery = RecoveryInfo{
		Duration:       time.Since(start),
		SnapshotLSN:    d.snapLSN,
		Replayed:       replayed,
		Records:        wi.Records,
		TruncatedBytes: wi.TruncatedBytes,
	}
	mRecoverySeconds.Set(d.recovery.Duration.Seconds())
	mReplayed.Set(float64(replayed))
	if wi.TruncatedBytes > 0 {
		trace.EventCtx(d.tctx, trace.KindError, "wal.recovery.truncated",
			trace.Int("bytes", wi.TruncatedBytes))
	}
	if sp != nil {
		sp.SetInt("replayed_records", int64(replayed))
		sp.SetInt("snapshot_lsn", int64(d.snapLSN))
		sp.SetInt("truncated_bytes", wi.TruncatedBytes)
		sp.End()
	}

	d.wg.Add(1)
	go d.commitLoop()
	return d, nil
}

// applyRecord replays one WAL record during recovery. Application errors
// are deliberately ignored: a record that failed validation live fails
// identically here (application is deterministic), so the replayed state
// matches the pre-crash state. Decode failures mean the payload itself is
// damaged — impossible past the frame CRC short of a version skew — and
// refuse the log.
func (d *DurableGraph) applyRecord(rec wal.Record) error {
	switch rec.Type {
	case wal.RecEdgeBatch:
		edges, err := decodeEdgeList(rec.Payload)
		if err != nil {
			return fmt.Errorf("%w: record %d: %v", wal.ErrCorrupt, rec.LSN, err)
		}
		d.g.AppendBatch(edges)
	case wal.RecDeleteBatch:
		edges, err := decodeEdgeList(rec.Payload)
		if err != nil {
			return fmt.Errorf("%w: record %d: %v", wal.ErrCorrupt, rec.LSN, err)
		}
		d.g.DeleteEdges(edges)
	case wal.RecExpire:
		if len(rec.Payload) != 8 {
			return fmt.Errorf("%w: record %d: expire payload %d bytes", wal.ErrCorrupt, rec.LSN, len(rec.Payload))
		}
		d.g.ExpireBefore(temporal.Time(binary.LittleEndian.Uint64(rec.Payload)))
	case wal.RecSnapshotMark:
		// Informational: the snapshot file is the source of truth.
	default:
		return fmt.Errorf("%w: record %d: unknown type %d", wal.ErrCorrupt, rec.LSN, rec.Type)
	}
	return nil
}

// AppendBatch logs and applies a batch of strictly newer edges. The batch
// is durable per the configured fsync policy before this returns.
func (d *DurableGraph) AppendBatch(edges []temporal.Edge) error {
	if len(edges) == 0 {
		return nil
	}
	req := &ingestReq{typ: wal.RecEdgeBatch, payload: encodeEdgeList(edges), edges: edges, done: make(chan struct{})}
	return d.submit(req)
}

// DeleteEdges logs and applies a batch of deletions; partial-failure
// semantics follow Graph.DeleteEdges (a *BatchError reports the applied
// prefix, and retrying the full batch is safe).
func (d *DurableGraph) DeleteEdges(edges []temporal.Edge) error {
	if len(edges) == 0 {
		return nil
	}
	req := &ingestReq{typ: wal.RecDeleteBatch, payload: encodeEdgeList(edges), edges: edges, done: make(chan struct{})}
	return d.submit(req)
}

// ExpireBefore logs and applies a sliding-window expiry, returning the
// number of edges dropped.
func (d *DurableGraph) ExpireBefore(horizon temporal.Time) (int, error) {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], uint64(horizon))
	req := &ingestReq{typ: wal.RecExpire, payload: p[:], horizon: horizon, done: make(chan struct{})}
	if err := d.submit(req); err != nil {
		return 0, err
	}
	return req.dropped, nil
}

// submit queues one mutation and waits for its group to commit and apply.
func (d *DurableGraph) submit(req *ingestReq) error {
	if d.closed.Load() {
		return ErrClosed
	}
	if err := d.Err(); err != nil {
		return err
	}
	select {
	case d.reqCh <- req:
	case <-d.quit:
		return ErrClosed
	}
	<-req.done
	return req.err
}

// commitLoop is the single committer: it drains queued mutations into
// groups, makes each group durable with one WAL append, applies it in log
// order, then considers a snapshot.
func (d *DurableGraph) commitLoop() {
	defer d.wg.Done()
	for {
		var first *ingestReq
		select {
		case first = <-d.reqCh:
		case <-d.quit:
			d.drainOnExit()
			return
		}
		batch := []*ingestReq{first}
	drain:
		for len(batch) < maxGroup {
			select {
			case r := <-d.reqCh:
				batch = append(batch, r)
			default:
				break drain
			}
		}
		d.commitGroup(batch)
		if d.cfg.SnapshotEvery > 0 && d.sinceSnap >= d.cfg.SnapshotEvery {
			d.checkpoint()
		}
	}
}

// drainOnExit completes whatever was queued when Close was called: graceful
// shutdown still commits accepted writes.
func (d *DurableGraph) drainOnExit() {
	for {
		select {
		case r := <-d.reqCh:
			d.commitGroup([]*ingestReq{r})
		default:
			return
		}
	}
}

// commitGroup writes one group through the WAL (log order = slice order),
// applies it under the write lock, and releases the waiters.
func (d *DurableGraph) commitGroup(batch []*ingestReq) {
	entries := make([]wal.Entry, len(batch))
	for i, r := range batch {
		entries[i] = wal.Entry{Type: r.typ, Payload: r.payload}
	}
	if _, err := d.log.Append(entries...); err != nil {
		d.fail(err)
		err = d.Err()
		for _, r := range batch {
			r.err = err
			close(r.done)
		}
		return
	}
	mGroupCommit.Observe(float64(len(batch)))
	d.mu.Lock()
	for _, r := range batch {
		switch r.typ {
		case wal.RecEdgeBatch:
			r.err = d.g.AppendBatch(r.edges)
		case wal.RecDeleteBatch:
			r.err = d.g.DeleteEdges(r.edges)
		case wal.RecExpire:
			r.dropped = d.g.ExpireBefore(r.horizon)
		}
	}
	d.mu.Unlock()
	for _, r := range batch {
		close(r.done)
	}
	d.sinceSnap += len(batch)
}

// checkpoint writes a snapshot covering everything logged so far, appends a
// snapshot marker, and trims sealed segments the snapshot covers. Runs on
// the committer goroutine — no mutations are in flight. Failure is
// non-fatal: the WAL alone still recovers everything.
func (d *DurableGraph) checkpoint() {
	lsn := d.log.LastLSN()
	start := time.Now()
	d.mu.RLock()
	err := WriteSnapshotFile(filepath.Join(d.dir, snapshotName), d.g, lsn)
	d.mu.RUnlock()
	if err != nil {
		trace.EventCtx(d.tctx, trace.KindError, "wal.snapshot.error", trace.Str("error", err.Error()))
		return
	}
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], lsn)
	if _, err := d.log.Append(wal.Entry{Type: wal.RecSnapshotMark, Payload: p[:]}); err != nil {
		d.fail(err)
		return
	}
	if _, err := d.log.TruncateBefore(lsn + 1); err != nil {
		trace.EventCtx(d.tctx, trace.KindError, "wal.truncate.error", trace.Str("error", err.Error()))
	}
	d.snapLSN = lsn
	d.sinceSnap = 0
	mSnapshots.Inc()
	mSnapshotSeconds.ObserveSince(start)
}

// fail records the first WAL failure and flips the graph into the sticky
// degraded state, with a flight-recorder event.
func (d *DurableGraph) fail(cause error) {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	if d.err != nil {
		return
	}
	d.err = fmt.Errorf("%w: %v", ErrDegraded, cause)
	trace.EventCtx(d.tctx, trace.KindError, "wal.degraded", trace.Str("error", cause.Error()))
}

// Err returns the sticky degraded error, nil while healthy.
func (d *DurableGraph) Err() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.err
}

// Recovery reports what OpenDurable found and replayed.
func (d *DurableGraph) Recovery() RecoveryInfo { return d.recovery }

// Dir returns the durable graph's directory.
func (d *DurableGraph) Dir() string { return d.dir }

// NumVertices returns the current vertex-space size.
func (d *DurableGraph) NumVertices() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.g.NumVertices()
}

// NumEdges returns the live edge count.
func (d *DurableGraph) NumEdges() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.g.NumEdges()
}

// Frontier returns the newest ingested timestamp.
func (d *DurableGraph) Frontier() temporal.Time {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.g.Frontier()
}

// WalkSeeded runs one deterministic temporal walk under the read lock;
// walks keep running during ingest.
func (d *DurableGraph) WalkSeeded(src temporal.Vertex, start temporal.Time, length int, seed uint64) ([]temporal.Vertex, []temporal.Time) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.g.WalkSeeded(src, start, length, seed)
}

// Stats summarizes the graph for the serving layer.
func (d *DurableGraph) Stats() DurableStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	st := DurableStats{
		Vertices:    d.g.NumVertices(),
		Edges:       d.g.NumEdges(),
		Deleted:     d.g.NumDeleted(),
		MemoryBytes: d.g.MemoryBytes(),
		Weight:      d.g.spec.Kind.String(),
	}
	for u := range d.g.verts {
		if live := d.g.verts[u].degree - d.g.verts[u].deleted; live > st.MaxDegree {
			st.MaxDegree = live
		}
	}
	if st.Edges > 0 {
		st.TimeLo = d.g.minTime
		st.TimeHi = d.g.frontier
	}
	return st
}

// View runs fn with the read lock held, for callers (tests, experiment
// harnesses) that need richer access than the accessors above. fn must not
// retain or mutate the graph.
func (d *DurableGraph) View(fn func(*Graph)) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	fn(d.g)
}

// Close drains accepted writes, flushes the WAL, and closes it.
func (d *DurableGraph) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	d.quitOnce.Do(func() { close(d.quit) })
	d.wg.Wait()
	d.failPending(ErrClosed)
	return d.log.Close()
}

// Crash abandons the graph without flushing, as a killed process would:
// nothing is synced, no snapshot is written, queued-but-uncommitted writes
// are lost. Crash-recovery tests reopen the directory afterwards.
func (d *DurableGraph) Crash() {
	if !d.closed.CompareAndSwap(false, true) {
		return
	}
	d.log.Crash()
	d.quitOnce.Do(func() { close(d.quit) })
	d.wg.Wait()
	d.failPending(ErrClosed)
}

// failPending releases any requests still queued after the committer exited.
func (d *DurableGraph) failPending(err error) {
	for {
		select {
		case r := <-d.reqCh:
			r.err = err
			close(r.done)
		default:
			return
		}
	}
}

// encodeEdgeList frames a batch as u32 count then (u32 src, u32 dst,
// u64 time) per edge.
func encodeEdgeList(edges []temporal.Edge) []byte {
	buf := make([]byte, 4+16*len(edges))
	binary.LittleEndian.PutUint32(buf, uint32(len(edges)))
	off := 4
	for _, e := range edges {
		binary.LittleEndian.PutUint32(buf[off:], uint32(e.Src))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(e.Dst))
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(e.Time))
		off += 16
	}
	return buf
}

func decodeEdgeList(p []byte) ([]temporal.Edge, error) {
	if len(p) < 4 {
		return nil, errors.New("edge list: short count")
	}
	n := int(binary.LittleEndian.Uint32(p))
	if len(p) != 4+16*n {
		return nil, fmt.Errorf("edge list: %d bytes for %d edges", len(p), n)
	}
	edges := make([]temporal.Edge, n)
	off := 4
	for i := range edges {
		edges[i] = temporal.Edge{
			Src:  temporal.Vertex(binary.LittleEndian.Uint32(p[off:])),
			Dst:  temporal.Vertex(binary.LittleEndian.Uint32(p[off+4:])),
			Time: temporal.Time(binary.LittleEndian.Uint64(p[off+8:])),
		}
		off += 16
	}
	return edges, nil
}
