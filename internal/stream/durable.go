package stream

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/tea-graph/tea/internal/metrics"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/trace"
	"github.com/tea-graph/tea/internal/vfs"
	"github.com/tea-graph/tea/internal/wal"
)

// DurableGraph wraps a streaming Graph with a write-ahead log so ingest
// survives crashes: every mutation (AppendBatch, DeleteEdges, ExpireBefore)
// is framed into the WAL — and, under the always policy, fsynced — before it
// is applied in memory. Mutations from concurrent callers are group-
// committed: a single committer goroutine drains the submission queue,
// writes the whole group with one WAL append (one fsync), then applies the
// operations in log order under the write lock, so the in-memory state and
// the log never disagree about ordering. Readers (walks, stats) take the
// read lock and keep running during ingest.
//
// Recovery is snapshot + log-suffix replay: OpenDurable loads the newest
// *verifiable* snapshot generation (exact segment-level image, CRC-verified),
// then replays every WAL record with a later LSN through the same code paths
// the live writes took. Operations that failed live (a stale batch, a delete
// of a missing edge) fail identically during replay — the log records intent,
// and application is deterministic — so the recovered graph is structurally
// identical to the pre-crash one. A torn WAL tail is truncated; mid-log
// corruption refuses with wal.ErrCorrupt.
//
// Snapshots are generational: each checkpoint writes snapshot.<lsn> and the
// last SnapshotKeep generations are retained, with the WAL trimmed only past
// the oldest retained one — so every retained generation still has its full
// log suffix. A corrupt generation is quarantined (renamed *.corrupt, counted
// by tea_snapshot_quarantined_total) and recovery falls back to the next
// older one, replaying the longer suffix, instead of refusing to boot.
//
// After the first WAL write or fsync failure (or an ENOSPC mid-checkpoint)
// the graph enters a sticky degraded state: reads keep working, every further
// mutation fails fast with ErrDegraded, and the failure is recorded in the
// flight recorder. A background heal loop then periodically rolls the WAL
// back to its durable point, probes the device, and re-anchors durability
// with a fresh checkpoint; once that succeeds the degraded state clears and
// writes flow again — a disk-full episode needs no restart.

// ErrDegraded is returned by mutations after a WAL write or fsync failure.
// The wrapped cause is the first failure; the state is sticky because a log
// that lost a write can no longer promise recoverability.
var ErrDegraded = errors.New("stream: durable graph degraded (WAL write failed)")

// ErrClosed is returned by mutations on a closed durable graph.
var ErrClosed = errors.New("stream: durable graph closed")

// ErrSnapshotMismatch is returned when a snapshot on disk was written under
// a different weight configuration than the one the graph is opened with.
var ErrSnapshotMismatch = errors.New("stream: snapshot weight config does not match")

// snapshotName is the snapshot base name inside the WAL directory. Current
// generations are snapshot.<lsn> (zero-padded decimal); a bare "snapshot"
// is the pre-generational legacy layout, still honored during recovery.
const snapshotName = "snapshot"

// snapshotFileName renders the generation file name for a covered LSN.
// Zero-padding keeps lexicographic and numeric order identical.
func snapshotFileName(lsn uint64) string {
	return fmt.Sprintf("%s.%020d", snapshotName, lsn)
}

// ErrNoUsableSnapshot is returned when every snapshot generation failed
// verification AND the WAL no longer reaches back to LSN 1 — replaying the
// surviving log alone would silently drop acknowledged history.
var ErrNoUsableSnapshot = errors.New("stream: no usable snapshot and the WAL does not reach back far enough")

// snapGen is one snapshot generation found on disk.
type snapGen struct {
	path   string
	lsn    uint64
	legacy bool // bare "snapshot" file; lsn read from its header
}

// listSnapshots enumerates snapshot generations in dir, oldest first. The
// legacy unnumbered file is ordered by its header LSN; quarantined
// (*.corrupt) and temp files are excluded. A legacy file whose header is
// unreadable is returned with LSN 0 so it sorts oldest and gets quarantined
// when (and only when) recovery actually has to fall back to it.
func listSnapshots(fsys vfs.FS, dir string) ([]snapGen, error) {
	names, err := fsys.Glob(filepath.Join(dir, snapshotName+".*"))
	if err != nil {
		return nil, fmt.Errorf("stream: list snapshots: %w", err)
	}
	var gens []snapGen
	for _, p := range names {
		suffix := strings.TrimPrefix(filepath.Base(p), snapshotName+".")
		lsn, ok := uint64(0), len(suffix) > 0
		for _, c := range suffix {
			if c < '0' || c > '9' {
				ok = false // .tmp, .corrupt, foreign files
				break
			}
			lsn = lsn*10 + uint64(c-'0')
		}
		if ok {
			gens = append(gens, snapGen{path: p, lsn: lsn})
		}
	}
	legacy := filepath.Join(dir, snapshotName)
	if _, err := fsys.Stat(legacy); err == nil {
		lsn, _ := SnapshotFileLSN(fsys, legacy)
		gens = append(gens, snapGen{path: legacy, lsn: lsn, legacy: true})
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i].lsn < gens[j].lsn })
	return gens, nil
}

// maxGroup bounds one group commit; queued writers beyond it wait for the
// next group.
const maxGroup = 128

// Group-commit, snapshot, and recovery metric families (the wal package owns
// the per-append and fsync families).
var (
	mGroupCommit      = metrics.Default.Histogram("tea_wal_group_commit_records")
	mSnapshots        = metrics.Default.Counter("tea_wal_snapshots_total")
	mSnapshotSeconds  = metrics.Default.Histogram("tea_wal_snapshot_seconds")
	mRecoverySeconds  = metrics.Default.Gauge("tea_wal_recovery_seconds")
	mReplayed         = metrics.Default.Gauge("tea_wal_recovery_replayed_records")
	mSnapQuarantined  = metrics.Default.Counter("tea_snapshot_quarantined_total")
	mSnapGenerations  = metrics.Default.Gauge("tea_snapshot_generations")
	mGraphHeals       = metrics.Default.Counter("tea_durable_heals_total")
	mGraphHealFailed  = metrics.Default.Counter("tea_durable_heal_failures_total")
	mCheckpointErrors = metrics.Default.Counter("tea_wal_snapshot_errors_total")
)

// DurableConfig parameterizes OpenDurable.
type DurableConfig struct {
	// Graph configures the in-memory stream (weight kind, initial sizing).
	// Must match the configuration of any snapshot already in the
	// directory, or OpenDurable fails with ErrSnapshotMismatch.
	Graph Config
	// WAL tunes the log (fsync policy, segment size). OnSyncError is owned
	// by the durable graph and must be left nil.
	WAL wal.Options
	// SnapshotEvery writes a snapshot (and trims the log) every N logged
	// mutations; 0 disables periodic snapshots.
	SnapshotEvery int
	// SnapshotKeep is how many snapshot generations to retain; 0 means 2.
	// The WAL is trimmed only past the oldest retained generation, so every
	// retained snapshot can still replay its full log suffix.
	SnapshotKeep int
	// HealInterval is how often the degraded graph probes the device and
	// tries to self-heal; 0 means 2s, negative disables the loop.
	HealInterval time.Duration
	// WALWarnRatio triggers a warning log when retained WAL bytes exceed
	// this multiple of the newest snapshot's size; 0 means 4, negative
	// disables the warning.
	WALWarnRatio float64
	// FS is the filesystem the WAL and snapshots run against; nil means the
	// real OS. Takes precedence over WAL.FS.
	FS vfs.FS
	// Progress, when non-nil, receives recovery progress updates (from
	// OpenDurable's goroutine) so a serving layer can report how far
	// replay has come on /readyz.
	Progress func(RecoveryProgress)
	// Logger, when non-nil, receives storage warnings (WAL growth,
	// quarantined snapshots, heal attempts).
	Logger *slog.Logger
	// Tracer, when non-nil and enabled, receives recovery spans and
	// flight-recorder events for fsync errors and tail truncation.
	Tracer *trace.Tracer
}

// RecoveryProgress is a point-in-time view of a recovery in flight.
type RecoveryProgress struct {
	// SnapshotLSN is the LSN of the generation recovery chose (0 = none).
	SnapshotLSN uint64
	// SegmentsDone / SegmentsTotal count WAL segments replayed so far.
	SegmentsDone, SegmentsTotal int
	// RecordsApplied counts log records applied to the graph so far.
	RecordsApplied uint64
}

// RecoveryInfo summarizes one recovery pass.
type RecoveryInfo struct {
	// Duration is the wall time of snapshot load plus replay.
	Duration time.Duration
	// SnapshotLSN is the LSN the loaded snapshot covered (0 = no snapshot).
	SnapshotLSN uint64
	// Replayed counts log records applied after the snapshot.
	Replayed uint64
	// Records counts all surviving records in the log.
	Records uint64
	// TruncatedBytes counts torn-tail bytes discarded by the WAL scan.
	TruncatedBytes int64
}

// DurableStats is a point-in-time summary for the serving layer.
type DurableStats struct {
	Vertices    int
	Edges       int
	Deleted     int
	MaxDegree   int
	TimeLo      temporal.Time
	TimeHi      temporal.Time
	MemoryBytes int64
	Weight      string
}

// discardHandler drops every record; the default when no Logger is given.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// ingestReq is one queued mutation awaiting group commit.
type ingestReq struct {
	typ     wal.RecordType
	payload []byte
	edges   []temporal.Edge
	horizon temporal.Time
	dropped int
	err     error
	done    chan struct{}
}

// DurableGraph is the write-ahead-logged streaming graph. One committer
// goroutine serializes mutations; readers run concurrently under RLock.
type DurableGraph struct {
	dir    string
	cfg    DurableConfig
	fs     vfs.FS
	keep   int
	ratio  float64
	logger *slog.Logger

	mu sync.RWMutex // guards g
	g  *Graph

	log   *wal.Log
	reqCh chan *ingestReq
	quit  chan struct{}
	wg    sync.WaitGroup

	closed   atomic.Bool
	quitOnce sync.Once

	errMu sync.Mutex
	err   error

	sinceSnap int
	snapLSN   uint64
	recovery  RecoveryInfo
	tctx      context.Context
}

// OpenDurable opens (creating if needed) a durable streaming graph rooted at
// dir, recovering whatever state the directory holds: the newest verifiable
// snapshot generation, then WAL suffix replay. A torn WAL tail is repaired; a
// corrupt snapshot is quarantined (*.corrupt) and recovery falls back to the
// previous generation; mid-log corruption or a weight-config mismatch refuse
// with an error. If every generation is unusable and the WAL no longer
// reaches back to LSN 1, OpenDurable refuses with ErrNoUsableSnapshot rather
// than silently serving partial history.
func OpenDurable(dir string, cfg DurableConfig) (*DurableGraph, error) {
	if cfg.Graph.Weight.Custom != nil {
		return nil, ErrCustomWeight
	}
	fsys := cfg.FS
	if fsys == nil {
		fsys = cfg.WAL.FS
	}
	if fsys == nil {
		fsys = vfs.OS
	}
	keep := cfg.SnapshotKeep
	if keep <= 0 {
		keep = 2
	}
	ratio := cfg.WALWarnRatio
	if ratio == 0 {
		ratio = 4
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(discardHandler{})
	}
	d := &DurableGraph{
		dir:    dir,
		cfg:    cfg,
		fs:     fsys,
		keep:   keep,
		ratio:  ratio,
		logger: logger,
		reqCh:  make(chan *ingestReq, 2*maxGroup),
		quit:   make(chan struct{}),
	}
	ctx := context.Background()
	var sp *trace.Span
	if cfg.Tracer.Enabled() {
		ctx = trace.WithTracer(ctx, cfg.Tracer)
		ctx, sp = cfg.Tracer.StartRoot(ctx, "wal.recovery", "")
	}
	d.tctx = ctx

	start := time.Now()
	walOpts := cfg.WAL
	walOpts.FS = fsys
	walOpts.OnSyncError = func(err error) { d.fail(err) }
	log, err := wal.Open(dir, walOpts)
	if err != nil {
		if sp != nil {
			sp.SetError(err)
			sp.End()
		}
		return nil, err
	}
	d.log = log

	// Pre-rename residue from a checkpoint interrupted mid-write.
	if tmps, err := fsys.Glob(filepath.Join(dir, ".snapshot-*")); err == nil {
		for _, p := range tmps {
			fsys.Remove(p)
		}
	}

	gens, err := listSnapshots(fsys, dir)
	if err != nil {
		log.Close()
		return nil, err
	}
	quarantined := 0
	for i := len(gens) - 1; i >= 0 && d.g == nil; i-- {
		gen := gens[i]
		g, lsn, err := ReadSnapshotFileFS(fsys, gen.path)
		if err != nil {
			// Damaged generation: move it aside and fall back to the next
			// older one. The WAL was only ever trimmed past the oldest
			// retained generation, so the longer suffix is still replayable.
			quarantined++
			mSnapQuarantined.Inc()
			trace.EventCtx(d.tctx, trace.KindError, "snapshot.quarantined",
				trace.Str("path", filepath.Base(gen.path)), trace.Str("error", err.Error()))
			logger.Warn("quarantining corrupt snapshot generation",
				"path", gen.path, "error", err)
			if qerr := fsys.Rename(gen.path, gen.path+".corrupt"); qerr != nil {
				logger.Warn("quarantine rename failed", "path", gen.path, "error", qerr)
			}
			continue
		}
		if g.spec.Kind != cfg.Graph.Weight.Kind || g.spec.Lambda != cfg.Graph.Weight.Lambda {
			log.Close()
			return nil, fmt.Errorf("%w: snapshot %v/λ=%v, config %v/λ=%v",
				ErrSnapshotMismatch, g.spec.Kind, g.spec.Lambda, cfg.Graph.Weight.Kind, cfg.Graph.Weight.Lambda)
		}
		d.g = g
		d.snapLSN = lsn
	}
	if d.g == nil {
		// No usable snapshot: the log must reach back to the beginning, or
		// acknowledged history would be silently missing.
		if log.FirstLSN() > 1 {
			log.Close()
			return nil, fmt.Errorf("%w: log starts at LSN %d", ErrNoUsableSnapshot, log.FirstLSN())
		}
		g, err := New(cfg.Graph)
		if err != nil {
			log.Close()
			return nil, err
		}
		d.g = g
	} else if log.FirstLSN() > d.snapLSN+1 {
		// The chosen snapshot predates the log's oldest record: there is a
		// gap no replay can fill.
		log.Close()
		return nil, fmt.Errorf("%w: snapshot covers LSN %d but log starts at %d",
			ErrNoUsableSnapshot, d.snapLSN, log.FirstLSN())
	}

	report := func(p RecoveryProgress) {
		if cfg.Progress != nil {
			cfg.Progress(p)
		}
	}
	segsDone, segsTotal := 0, log.Recovery().Segments
	report(RecoveryProgress{SnapshotLSN: d.snapLSN, SegmentsTotal: segsTotal})
	replayed := uint64(0)
	if err := log.ReplayProgress(func(rec wal.Record) error {
		if rec.LSN <= d.snapLSN {
			return nil
		}
		if err := d.applyRecord(rec); err != nil {
			return err
		}
		replayed++
		if replayed%65536 == 0 {
			report(RecoveryProgress{SnapshotLSN: d.snapLSN,
				SegmentsDone: segsDone, SegmentsTotal: segsTotal, RecordsApplied: replayed})
		}
		return nil
	}, func(done, total int) {
		segsDone, segsTotal = done, total
		report(RecoveryProgress{SnapshotLSN: d.snapLSN,
			SegmentsDone: done, SegmentsTotal: total, RecordsApplied: replayed})
	}); err != nil {
		log.Close()
		return nil, err
	}

	wi := log.Recovery()
	d.recovery = RecoveryInfo{
		Duration:       time.Since(start),
		SnapshotLSN:    d.snapLSN,
		Replayed:       replayed,
		Records:        wi.Records,
		TruncatedBytes: wi.TruncatedBytes,
	}
	mRecoverySeconds.Set(d.recovery.Duration.Seconds())
	mReplayed.Set(float64(replayed))
	if wi.TruncatedBytes > 0 {
		trace.EventCtx(d.tctx, trace.KindError, "wal.recovery.truncated",
			trace.Int("bytes", wi.TruncatedBytes))
	}
	if sp != nil {
		sp.SetInt("replayed_records", int64(replayed))
		sp.SetInt("snapshot_lsn", int64(d.snapLSN))
		sp.SetInt("truncated_bytes", wi.TruncatedBytes)
		sp.End()
	}

	d.wg.Add(1)
	go d.commitLoop()
	return d, nil
}

// applyRecord replays one WAL record during recovery. Application errors
// are deliberately ignored: a record that failed validation live fails
// identically here (application is deterministic), so the replayed state
// matches the pre-crash state. Decode failures mean the payload itself is
// damaged — impossible past the frame CRC short of a version skew — and
// refuse the log.
func (d *DurableGraph) applyRecord(rec wal.Record) error {
	switch rec.Type {
	case wal.RecEdgeBatch:
		edges, err := decodeEdgeList(rec.Payload)
		if err != nil {
			return fmt.Errorf("%w: record %d: %v", wal.ErrCorrupt, rec.LSN, err)
		}
		d.g.AppendBatch(edges)
	case wal.RecDeleteBatch:
		edges, err := decodeEdgeList(rec.Payload)
		if err != nil {
			return fmt.Errorf("%w: record %d: %v", wal.ErrCorrupt, rec.LSN, err)
		}
		d.g.DeleteEdges(edges)
	case wal.RecExpire:
		if len(rec.Payload) != 8 {
			return fmt.Errorf("%w: record %d: expire payload %d bytes", wal.ErrCorrupt, rec.LSN, len(rec.Payload))
		}
		d.g.ExpireBefore(temporal.Time(binary.LittleEndian.Uint64(rec.Payload)))
	case wal.RecSnapshotMark:
		// Informational: the snapshot file is the source of truth.
	case wal.RecNoop:
		// Heal's device probe; carries no state change.
	default:
		return fmt.Errorf("%w: record %d: unknown type %d", wal.ErrCorrupt, rec.LSN, rec.Type)
	}
	return nil
}

// AppendBatch logs and applies a batch of strictly newer edges. The batch
// is durable per the configured fsync policy before this returns.
func (d *DurableGraph) AppendBatch(edges []temporal.Edge) error {
	if len(edges) == 0 {
		return nil
	}
	req := &ingestReq{typ: wal.RecEdgeBatch, payload: encodeEdgeList(edges), edges: edges, done: make(chan struct{})}
	return d.submit(req)
}

// DeleteEdges logs and applies a batch of deletions; partial-failure
// semantics follow Graph.DeleteEdges (a *BatchError reports the applied
// prefix, and retrying the full batch is safe).
func (d *DurableGraph) DeleteEdges(edges []temporal.Edge) error {
	if len(edges) == 0 {
		return nil
	}
	req := &ingestReq{typ: wal.RecDeleteBatch, payload: encodeEdgeList(edges), edges: edges, done: make(chan struct{})}
	return d.submit(req)
}

// ExpireBefore logs and applies a sliding-window expiry, returning the
// number of edges dropped.
func (d *DurableGraph) ExpireBefore(horizon temporal.Time) (int, error) {
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], uint64(horizon))
	req := &ingestReq{typ: wal.RecExpire, payload: p[:], horizon: horizon, done: make(chan struct{})}
	if err := d.submit(req); err != nil {
		return 0, err
	}
	return req.dropped, nil
}

// submit queues one mutation and waits for its group to commit and apply.
func (d *DurableGraph) submit(req *ingestReq) error {
	if d.closed.Load() {
		return ErrClosed
	}
	if err := d.Err(); err != nil {
		return err
	}
	select {
	case d.reqCh <- req:
	case <-d.quit:
		return ErrClosed
	}
	<-req.done
	return req.err
}

// commitLoop is the single committer: it drains queued mutations into
// groups, makes each group durable with one WAL append, applies it in log
// order, then considers a snapshot.
func (d *DurableGraph) commitLoop() {
	defer d.wg.Done()
	healEvery := d.cfg.HealInterval
	if healEvery == 0 {
		healEvery = 2 * time.Second
	}
	var healC <-chan time.Time
	if healEvery > 0 {
		t := time.NewTicker(healEvery)
		defer t.Stop()
		healC = t.C
	}
	for {
		var first *ingestReq
		select {
		case first = <-d.reqCh:
		case <-healC:
			d.tryHeal()
			continue
		case <-d.quit:
			d.drainOnExit()
			return
		}
		batch := []*ingestReq{first}
	drain:
		for len(batch) < maxGroup {
			select {
			case r := <-d.reqCh:
				batch = append(batch, r)
			default:
				break drain
			}
		}
		d.commitGroup(batch)
		if d.cfg.SnapshotEvery > 0 && d.sinceSnap >= d.cfg.SnapshotEvery {
			d.checkpoint()
		}
	}
}

// tryHeal runs on the committer goroutine while the graph is degraded: roll
// the WAL back to its durable point and probe the device, then re-anchor
// durability with a fresh checkpoint (under the weaker fsync policies the
// rollback may have discarded acknowledged-but-unsynced records; the
// snapshot captures their applied effects). Only after both succeed does the
// degraded state clear and writes flow again.
func (d *DurableGraph) tryHeal() {
	if d.Err() == nil {
		return
	}
	if err := d.log.Heal(); err != nil {
		mGraphHealFailed.Inc()
		return
	}
	if err := d.checkpoint(); err != nil {
		mGraphHealFailed.Inc()
		return
	}
	d.errMu.Lock()
	d.err = nil
	d.errMu.Unlock()
	mGraphHeals.Inc()
	trace.EventCtx(d.tctx, trace.KindInfo, "wal.healed")
	d.logger.Info("durable graph healed; writes restored")
}

// drainOnExit completes whatever was queued when Close was called: graceful
// shutdown still commits accepted writes.
func (d *DurableGraph) drainOnExit() {
	for {
		select {
		case r := <-d.reqCh:
			d.commitGroup([]*ingestReq{r})
		default:
			return
		}
	}
}

// commitGroup writes one group through the WAL (log order = slice order),
// applies it under the write lock, and releases the waiters.
func (d *DurableGraph) commitGroup(batch []*ingestReq) {
	entries := make([]wal.Entry, len(batch))
	for i, r := range batch {
		entries[i] = wal.Entry{Type: r.typ, Payload: r.payload}
	}
	if _, err := d.log.Append(entries...); err != nil {
		d.fail(err)
		err = d.Err()
		for _, r := range batch {
			r.err = err
			close(r.done)
		}
		return
	}
	mGroupCommit.Observe(float64(len(batch)))
	d.mu.Lock()
	for _, r := range batch {
		switch r.typ {
		case wal.RecEdgeBatch:
			r.err = d.g.AppendBatch(r.edges)
		case wal.RecDeleteBatch:
			r.err = d.g.DeleteEdges(r.edges)
		case wal.RecExpire:
			r.dropped = d.g.ExpireBefore(r.horizon)
		}
	}
	d.mu.Unlock()
	for _, r := range batch {
		close(r.done)
	}
	d.sinceSnap += len(batch)
}

// checkpoint writes a new snapshot generation covering everything logged so
// far, appends a snapshot marker, prunes generations beyond SnapshotKeep,
// and trims WAL segments no retained generation needs. Runs on the committer
// goroutine — no mutations are in flight. A write failure leaves every prior
// generation intact (the new file lands by atomic rename); an ENOSPC
// additionally degrades the graph so the serving layer goes read-only and
// the heal loop takes over.
func (d *DurableGraph) checkpoint() error {
	lsn := d.log.LastLSN()
	start := time.Now()
	path := filepath.Join(d.dir, snapshotFileName(lsn))
	d.mu.RLock()
	err := WriteSnapshotFileFS(d.fs, path, d.g, lsn)
	d.mu.RUnlock()
	if err != nil {
		mCheckpointErrors.Inc()
		trace.EventCtx(d.tctx, trace.KindError, "wal.snapshot.error", trace.Str("error", err.Error()))
		if vfs.IsNoSpace(err) {
			d.fail(err)
		}
		return err
	}
	var p [8]byte
	binary.LittleEndian.PutUint64(p[:], lsn)
	if _, err := d.log.Append(wal.Entry{Type: wal.RecSnapshotMark, Payload: p[:]}); err != nil {
		d.fail(err)
		return err
	}

	// Prune old generations, then trim the WAL only past the oldest one
	// still retained — every retained snapshot keeps its full log suffix.
	oldest := lsn
	if gens, err := listSnapshots(d.fs, d.dir); err == nil {
		for len(gens) > d.keep {
			if rerr := d.fs.Remove(gens[0].path); rerr != nil {
				d.logger.Warn("pruning old snapshot failed", "path", gens[0].path, "error", rerr)
				break
			}
			gens = gens[1:]
		}
		if len(gens) > 0 {
			oldest = gens[0].lsn
		}
		mSnapGenerations.Set(float64(len(gens)))
	}
	if _, err := d.log.TruncateBefore(oldest + 1); err != nil {
		trace.EventCtx(d.tctx, trace.KindError, "wal.truncate.error", trace.Str("error", err.Error()))
	}

	// Growth accounting: how much the retained log could shrink to, and a
	// warning when it dwarfs the state it protects (snapshot cadence too
	// slow, or generations pinning a huge suffix).
	reclaimable := d.log.ReclaimableBefore(lsn + 1)
	if st, serr := d.fs.Stat(path); serr == nil && d.ratio > 0 {
		snapSize := st.Size()
		if walSize := d.log.SizeBytes(); snapSize > 0 && float64(walSize) > d.ratio*float64(snapSize) {
			d.logger.Warn("retained WAL exceeds snapshot size budget",
				"wal_bytes", walSize, "snapshot_bytes", snapSize,
				"ratio_limit", d.ratio, "reclaimable_bytes", reclaimable)
		}
	}

	d.snapLSN = lsn
	d.sinceSnap = 0
	mSnapshots.Inc()
	mSnapshotSeconds.ObserveSince(start)
	return nil
}

// fail records the first WAL failure and flips the graph into the sticky
// degraded state, with a flight-recorder event.
func (d *DurableGraph) fail(cause error) {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	if d.err != nil {
		return
	}
	// Both sentinels stay matchable: ErrDegraded for "writes are failing",
	// and the cause chain (e.g. vfs.ErrNoSpace) for "why" — the serving
	// layer maps disk-full to 507 Insufficient Storage.
	d.err = fmt.Errorf("%w: %w", ErrDegraded, cause)
	trace.EventCtx(d.tctx, trace.KindError, "wal.degraded", trace.Str("error", cause.Error()))
	d.logger.Warn("durable graph degraded; writes suspended", "error", cause)
}

// Err returns the sticky degraded error, nil while healthy.
func (d *DurableGraph) Err() error {
	d.errMu.Lock()
	defer d.errMu.Unlock()
	return d.err
}

// Recovery reports what OpenDurable found and replayed.
func (d *DurableGraph) Recovery() RecoveryInfo { return d.recovery }

// Dir returns the durable graph's directory.
func (d *DurableGraph) Dir() string { return d.dir }

// Log exposes the underlying WAL for scrubbers and operational tooling.
// Callers must not Append or Close through it.
func (d *DurableGraph) Log() *wal.Log { return d.log }

// SnapshotPaths lists the retained snapshot generation files, oldest first.
// A checkpoint may add or prune generations concurrently; scrubbers treat a
// vanished file as pruned, not damaged.
func (d *DurableGraph) SnapshotPaths() []string {
	gens, err := listSnapshots(d.fs, d.dir)
	if err != nil {
		return nil
	}
	paths := make([]string, len(gens))
	for i, g := range gens {
		paths[i] = g.path
	}
	return paths
}

// NumVertices returns the current vertex-space size.
func (d *DurableGraph) NumVertices() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.g.NumVertices()
}

// NumEdges returns the live edge count.
func (d *DurableGraph) NumEdges() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.g.NumEdges()
}

// Frontier returns the newest ingested timestamp.
func (d *DurableGraph) Frontier() temporal.Time {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.g.Frontier()
}

// WalkSeeded runs one deterministic temporal walk under the read lock;
// walks keep running during ingest.
func (d *DurableGraph) WalkSeeded(src temporal.Vertex, start temporal.Time, length int, seed uint64) ([]temporal.Vertex, []temporal.Time) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.g.WalkSeeded(src, start, length, seed)
}

// Stats summarizes the graph for the serving layer.
func (d *DurableGraph) Stats() DurableStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	st := DurableStats{
		Vertices:    d.g.NumVertices(),
		Edges:       d.g.NumEdges(),
		Deleted:     d.g.NumDeleted(),
		MemoryBytes: d.g.MemoryBytes(),
		Weight:      d.g.spec.Kind.String(),
	}
	for u := range d.g.verts {
		if live := d.g.verts[u].degree - d.g.verts[u].deleted; live > st.MaxDegree {
			st.MaxDegree = live
		}
	}
	if st.Edges > 0 {
		st.TimeLo = d.g.minTime
		st.TimeHi = d.g.frontier
	}
	return st
}

// View runs fn with the read lock held, for callers (tests, experiment
// harnesses) that need richer access than the accessors above. fn must not
// retain or mutate the graph.
func (d *DurableGraph) View(fn func(*Graph)) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	fn(d.g)
}

// Close drains accepted writes, flushes the WAL, and closes it.
func (d *DurableGraph) Close() error {
	if !d.closed.CompareAndSwap(false, true) {
		return nil
	}
	d.quitOnce.Do(func() { close(d.quit) })
	d.wg.Wait()
	d.failPending(ErrClosed)
	return d.log.Close()
}

// Crash abandons the graph without flushing, as a killed process would:
// nothing is synced, no snapshot is written, queued-but-uncommitted writes
// are lost. Crash-recovery tests reopen the directory afterwards.
func (d *DurableGraph) Crash() {
	if !d.closed.CompareAndSwap(false, true) {
		return
	}
	d.log.Crash()
	d.quitOnce.Do(func() { close(d.quit) })
	d.wg.Wait()
	d.failPending(ErrClosed)
}

// failPending releases any requests still queued after the committer exited.
func (d *DurableGraph) failPending(err error) {
	for {
		select {
		case r := <-d.reqCh:
			r.err = err
			close(r.done)
		default:
			return
		}
	}
}

// encodeEdgeList frames a batch as u32 count then (u32 src, u32 dst,
// u64 time) per edge.
func encodeEdgeList(edges []temporal.Edge) []byte {
	buf := make([]byte, 4+16*len(edges))
	binary.LittleEndian.PutUint32(buf, uint32(len(edges)))
	off := 4
	for _, e := range edges {
		binary.LittleEndian.PutUint32(buf[off:], uint32(e.Src))
		binary.LittleEndian.PutUint32(buf[off+4:], uint32(e.Dst))
		binary.LittleEndian.PutUint64(buf[off+8:], uint64(e.Time))
		off += 16
	}
	return buf
}

func decodeEdgeList(p []byte) ([]temporal.Edge, error) {
	if len(p) < 4 {
		return nil, errors.New("edge list: short count")
	}
	n := int(binary.LittleEndian.Uint32(p))
	if len(p) != 4+16*n {
		return nil, fmt.Errorf("edge list: %d bytes for %d edges", len(p), n)
	}
	edges := make([]temporal.Edge, n)
	off := 4
	for i := range edges {
		edges[i] = temporal.Edge{
			Src:  temporal.Vertex(binary.LittleEndian.Uint32(p[off:])),
			Dst:  temporal.Vertex(binary.LittleEndian.Uint32(p[off+4:])),
			Time: temporal.Time(binary.LittleEndian.Uint64(p[off+8:])),
		}
		off += 16
	}
	return edges, nil
}
