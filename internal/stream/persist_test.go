package stream

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
)

// requireSameGraph asserts b is structurally identical to a: same counts,
// same per-vertex segment layout (destinations, timestamps, tombstones,
// scales), and — the property everything else exists to guarantee — the same
// seeded walks.
func requireSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() {
		t.Fatalf("vertices: %d vs %d", a.NumVertices(), b.NumVertices())
	}
	if a.NumEdges() != b.NumEdges() || a.NumDeleted() != b.NumDeleted() {
		t.Fatalf("edges: %d/%d vs %d/%d", a.NumEdges(), a.NumDeleted(), b.NumEdges(), b.NumDeleted())
	}
	if a.Frontier() != b.Frontier() || a.minTime != b.minTime || a.hasEdges != b.hasEdges {
		t.Fatalf("time bounds: (%d,%d,%v) vs (%d,%d,%v)",
			a.minTime, a.Frontier(), a.hasEdges, b.minTime, b.Frontier(), b.hasEdges)
	}
	for u := range a.verts {
		av, bv := &a.verts[u], &b.verts[u]
		if av.degree != bv.degree || av.deleted != bv.deleted || len(av.segs) != len(bv.segs) {
			t.Fatalf("vertex %d shape: (%d,%d,%d) vs (%d,%d,%d)",
				u, av.degree, av.deleted, len(av.segs), bv.degree, bv.deleted, len(bv.segs))
		}
		for si := range av.segs {
			as, bs := &av.segs[si], &bv.segs[si]
			if as.scale != bs.scale || as.deadCount != bs.deadCount {
				t.Fatalf("vertex %d seg %d: scale/dead (%v,%d) vs (%v,%d)",
					u, si, as.scale, as.deadCount, bs.scale, bs.deadCount)
			}
			for i := 0; i < as.len(); i++ {
				if as.dst[i] != bs.dst[i] || as.ts[i] != bs.ts[i] || as.isDeleted(i) != bs.isDeleted(i) {
					t.Fatalf("vertex %d seg %d slot %d differs", u, si, i)
				}
			}
		}
	}
	for seed := uint64(1); seed <= 8; seed++ {
		for u := 0; u < a.NumVertices(); u++ {
			va, ta := a.WalkSeeded(temporal.Vertex(u), temporal.MinTime, 16, seed)
			vb, tb := b.WalkSeeded(temporal.Vertex(u), temporal.MinTime, 16, seed)
			if len(va) != len(vb) || len(ta) != len(tb) {
				t.Fatalf("walk(%d, seed %d): length %d/%d vs %d/%d", u, seed, len(va), len(ta), len(vb), len(tb))
			}
			for i := range va {
				if va[i] != vb[i] {
					t.Fatalf("walk(%d, seed %d) diverges at hop %d", u, seed, i)
				}
			}
			for i := range ta {
				if ta[i] != tb[i] {
					t.Fatalf("walk(%d, seed %d) hop times diverge at %d", u, seed, i)
				}
			}
		}
	}
}

// buildMixedGraph produces a graph exercising every structure the snapshot
// must capture: multi-segment vertices, tombstones, and an expired window.
func buildMixedGraph(t *testing.T) *Graph {
	t.Helper()
	g := mustNew(t, Config{Weight: sampling.WeightSpec{Kind: sampling.WeightExponential, Lambda: 0.05}})
	for b := 0; b < 12; b++ {
		var batch []temporal.Edge
		for i := 0; i < 6; i++ {
			src := temporal.Vertex((b + i) % 5)
			batch = append(batch, temporal.Edge{Src: src, Dst: temporal.Vertex(i + 1), Time: temporal.Time(10*b + i + 1)})
		}
		if err := g.AppendBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.DeleteEdges([]temporal.Edge{
		{Src: 0, Dst: 1, Time: 1},
		{Src: 1, Dst: 1, Time: 11},
	}); err != nil {
		t.Fatal(err)
	}
	g.ExpireBefore(15)
	return g
}

func TestSnapshotRoundtrip(t *testing.T) {
	g := buildMixedGraph(t)
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf, 42); err != nil {
		t.Fatal(err)
	}
	g2, lsn, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 42 {
		t.Fatalf("lsn = %d, want 42", lsn)
	}
	requireSameGraph(t, g, g2)

	// The restored graph keeps working: appends and deletes land.
	next := g2.Frontier() + 1
	if err := g2.AppendBatch([]temporal.Edge{{Src: 0, Dst: 9, Time: next}}); err != nil {
		t.Fatalf("append after restore: %v", err)
	}
	if err := g2.DeleteEdges([]temporal.Edge{{Src: 0, Dst: 9, Time: next}}); err != nil {
		t.Fatalf("delete after restore: %v", err)
	}
}

func TestSnapshotFileAtomicAndVerified(t *testing.T) {
	g := buildMixedGraph(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot")
	if err := WriteSnapshotFile(path, g, 7); err != nil {
		t.Fatal(err)
	}
	// No temp residue after a successful write.
	if tmps, _ := filepath.Glob(filepath.Join(dir, ".snapshot-*")); len(tmps) != 0 {
		t.Fatalf("temp files left behind: %v", tmps)
	}
	g2, lsn, err := ReadSnapshotFile(path)
	if err != nil || lsn != 7 {
		t.Fatalf("read: lsn %d err %v", lsn, err)
	}
	requireSameGraph(t, g, g2)

	// Any flipped byte must be caught by the CRC footer (or a structural
	// bound), never silently loaded.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, off := range []int{0, 9, len(raw) / 2, len(raw) - 3} {
		bad := append([]byte(nil), raw...)
		bad[off] ^= 0xFF
		if _, _, err := ReadSnapshot(bytes.NewReader(bad)); !errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("flip at %d: err = %v, want ErrSnapshotCorrupt", off, err)
		}
	}
	// Truncation (a torn snapshot that escaped the atomic rename) also fails.
	if _, _, err := ReadSnapshot(bytes.NewReader(raw[:len(raw)-4])); !errors.Is(err, ErrSnapshotCorrupt) {
		t.Fatalf("truncated snapshot: err = %v, want ErrSnapshotCorrupt", err)
	}
}

func TestSnapshotEmptyGraph(t *testing.T) {
	g := mustNew(t, Config{})
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf, 0); err != nil {
		t.Fatal(err)
	}
	g2, lsn, err := ReadSnapshot(&buf)
	if err != nil || lsn != 0 {
		t.Fatalf("empty roundtrip: lsn %d err %v", lsn, err)
	}
	if g2.NumEdges() != 0 || g2.NumVertices() != g.NumVertices() {
		t.Fatalf("empty graph restored with %d edges, %d vertices", g2.NumEdges(), g2.NumVertices())
	}
	if err := g2.AppendBatch([]temporal.Edge{{Src: 0, Dst: 1, Time: 5}}); err != nil {
		t.Fatalf("append into restored empty graph: %v", err)
	}
}
