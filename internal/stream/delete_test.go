package stream

import (
	"errors"
	"math"
	"testing"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

func seedGraph(t *testing.T, spec sampling.WeightSpec, edges []temporal.Edge) *Graph {
	t.Helper()
	g := mustNew(t, Config{Weight: spec})
	for _, e := range edges {
		if err := g.AppendBatch([]temporal.Edge{e}); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

func TestDeleteBasics(t *testing.T) {
	// Five edges so a single deletion (20%) stays below the compaction
	// threshold and the tombstone remains observable.
	g := seedGraph(t, sampling.WeightSpec{}, []temporal.Edge{
		{Src: 0, Dst: 1, Time: 1}, {Src: 0, Dst: 2, Time: 2}, {Src: 0, Dst: 3, Time: 3},
		{Src: 0, Dst: 4, Time: 4}, {Src: 0, Dst: 5, Time: 5},
	})
	if err := g.DeleteEdges([]temporal.Edge{{Src: 0, Dst: 2, Time: 2}}); err != nil {
		t.Fatal(err)
	}
	if g.NumDeleted() != 1 {
		t.Fatalf("NumDeleted = %d", g.NumDeleted())
	}
	if g.LiveDegree(0) != 4 {
		t.Fatalf("LiveDegree = %d", g.LiveDegree(0))
	}
	if g.LiveCandidateCount(0, temporal.MinTime) != 4 {
		t.Fatalf("LiveCandidateCount = %d", g.LiveCandidateCount(0, temporal.MinTime))
	}
	if g.LiveCandidateCount(0, 1) != 3 {
		t.Fatalf("LiveCandidateCount(after 1) = %d", g.LiveCandidateCount(0, 1))
	}
	if g.LiveCandidateCount(0, 4) != 1 {
		t.Fatalf("LiveCandidateCount(after 4) = %d", g.LiveCandidateCount(0, 4))
	}
}

func TestDeleteErrors(t *testing.T) {
	g := seedGraph(t, sampling.WeightSpec{}, []temporal.Edge{{Src: 0, Dst: 1, Time: 1}})
	cases := []temporal.Edge{
		{Src: 0, Dst: 1, Time: 2},  // wrong time
		{Src: 0, Dst: 2, Time: 1},  // wrong dst
		{Src: 1, Dst: 0, Time: 1},  // wrong src
		{Src: 99, Dst: 0, Time: 1}, // unseen vertex
	}
	for _, e := range cases {
		if err := g.DeleteEdges([]temporal.Edge{e}); !errors.Is(err, ErrEdgeNotFound) {
			t.Errorf("delete %v: err = %v", e, err)
		}
	}
	// Double delete is an idempotent no-op while the tombstone survives.
	// (Here the lone edge compacts away immediately — 100% tombstoned — so
	// the re-delete reports not-found again; that is the documented
	// post-compaction caveat.)
	if err := g.DeleteEdges([]temporal.Edge{{Src: 0, Dst: 1, Time: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := g.DeleteEdges([]temporal.Edge{{Src: 0, Dst: 1, Time: 1}}); !errors.Is(err, ErrEdgeNotFound) {
		t.Fatalf("re-delete after compaction err = %v, want ErrEdgeNotFound", err)
	}
}

func TestDeleteIdempotentWhileTombstoned(t *testing.T) {
	// Five edges: one deletion (20%) stays below the compaction threshold,
	// so the tombstone survives and the re-delete is a no-op.
	g := seedGraph(t, sampling.WeightSpec{}, []temporal.Edge{
		{Src: 0, Dst: 1, Time: 1}, {Src: 0, Dst: 2, Time: 2}, {Src: 0, Dst: 3, Time: 3},
		{Src: 0, Dst: 4, Time: 4}, {Src: 0, Dst: 5, Time: 5},
	})
	if err := g.DeleteEdges([]temporal.Edge{{Src: 0, Dst: 2, Time: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := g.DeleteEdges([]temporal.Edge{{Src: 0, Dst: 2, Time: 2}}); err != nil {
		t.Fatalf("re-delete of tombstoned edge err = %v, want nil", err)
	}
	if g.NumDeleted() != 1 || g.LiveDegree(0) != 4 {
		t.Fatalf("re-delete changed state: deleted=%d live=%d", g.NumDeleted(), g.LiveDegree(0))
	}
}

func TestDeleteBatchErrorReportsAppliedPrefix(t *testing.T) {
	// Sixteen edges keep three deletions (18.75%) below the 25% compaction
	// threshold, so the tombstones this test observes survive.
	var seed []temporal.Edge
	for i := 1; i <= 16; i++ {
		seed = append(seed, temporal.Edge{Src: 0, Dst: temporal.Vertex(i), Time: temporal.Time(i)})
	}
	g := seedGraph(t, sampling.WeightSpec{}, seed)
	batch := []temporal.Edge{
		{Src: 0, Dst: 1, Time: 1},
		{Src: 0, Dst: 2, Time: 2},
		{Src: 0, Dst: 99, Time: 99}, // never existed
		{Src: 0, Dst: 3, Time: 3},
	}
	err := g.DeleteEdges(batch)
	if !errors.Is(err, ErrEdgeNotFound) {
		t.Fatalf("err = %v, want ErrEdgeNotFound", err)
	}
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %T, want *BatchError", err)
	}
	if be.Applied != 2 {
		t.Fatalf("Applied = %d, want 2", be.Applied)
	}
	// The prefix really landed; the suffix did not.
	if g.NumDeleted() != 2 || g.LiveDegree(0) != 14 {
		t.Fatalf("after partial batch: deleted=%d live=%d", g.NumDeleted(), g.LiveDegree(0))
	}
	// Retrying the corrected batch is safe: the already-applied prefix
	// re-deletes as a no-op and the remainder lands.
	fixed := []temporal.Edge{
		{Src: 0, Dst: 1, Time: 1},
		{Src: 0, Dst: 2, Time: 2},
		{Src: 0, Dst: 3, Time: 3},
	}
	if err := g.DeleteEdges(fixed); err != nil {
		t.Fatalf("retry after fixing batch: %v", err)
	}
	if g.LiveDegree(0) != 13 {
		t.Fatalf("after retry: live=%d, want 13", g.LiveDegree(0))
	}
}

// Deleting an edge must redistribute its probability over the survivors
// exactly proportionally.
func TestDeletePreservesDistribution(t *testing.T) {
	g := seedGraph(t, sampling.WeightSpec{Kind: sampling.WeightLinearTime}, []temporal.Edge{
		{Src: 0, Dst: 1, Time: 10},
		{Src: 0, Dst: 2, Time: 20},
		{Src: 0, Dst: 3, Time: 30},
		{Src: 0, Dst: 4, Time: 40},
	})
	if err := g.DeleteEdges([]temporal.Edge{{Src: 0, Dst: 3, Time: 30}}); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(1)
	counts := map[temporal.Vertex]int{}
	const draws = 60000
	for i := 0; i < draws; i++ {
		dst, _, _, ok := g.SampleStep(0, temporal.MinTime, r)
		if !ok {
			t.Fatal("sample failed")
		}
		counts[dst]++
	}
	if counts[3] != 0 {
		t.Fatalf("deleted edge sampled %d times", counts[3])
	}
	// Live weights (linear-time, minTime=10): 1→1, 2→11, 4→31; total 43.
	want := map[temporal.Vertex]float64{1: 1.0 / 43, 2: 11.0 / 43, 4: 31.0 / 43}
	for v, p := range want {
		got := float64(counts[v]) / draws
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("dst %d frequency %.4f, want %.4f", v, got, p)
		}
	}
}

func TestDeleteEverythingDeadEnds(t *testing.T) {
	g := seedGraph(t, sampling.WeightSpec{}, []temporal.Edge{
		{Src: 0, Dst: 1, Time: 1}, {Src: 0, Dst: 2, Time: 2},
	})
	if err := g.DeleteEdges([]temporal.Edge{
		{Src: 0, Dst: 1, Time: 1}, {Src: 0, Dst: 2, Time: 2},
	}); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(2)
	if _, _, _, ok := g.SampleStep(0, temporal.MinTime, r); ok {
		t.Fatal("sampled from fully deleted vertex")
	}
	if g.LiveDegree(0) != 0 {
		t.Fatalf("LiveDegree = %d", g.LiveDegree(0))
	}
}

func TestDeleteFallbackScan(t *testing.T) {
	// One tiny-weight live edge among heavy tombstones forces the rejection
	// loop into the exact fallback path.
	g := seedGraph(t, sampling.Exponential(1), []temporal.Edge{
		{Src: 0, Dst: 1, Time: 1},  // tiny weight (oldest)
		{Src: 0, Dst: 2, Time: 50}, // dominant
		{Src: 0, Dst: 3, Time: 51}, // dominant
	})
	if err := g.DeleteEdges([]temporal.Edge{
		{Src: 0, Dst: 2, Time: 50}, {Src: 0, Dst: 3, Time: 51},
	}); err != nil {
		t.Fatal(err)
	}
	// Compaction threshold (2/3 deleted) will have compacted; force the
	// rejection path instead on a fresh graph with lower deletion fraction.
	g2 := seedGraph(t, sampling.Exponential(1), []temporal.Edge{
		{Src: 0, Dst: 1, Time: 1},
		{Src: 0, Dst: 2, Time: 2},
		{Src: 0, Dst: 3, Time: 3},
		{Src: 0, Dst: 4, Time: 4},
		{Src: 0, Dst: 5, Time: 60}, // dominates the distribution
	})
	if err := g2.DeleteEdges([]temporal.Edge{{Src: 0, Dst: 5, Time: 60}}); err != nil {
		t.Fatal(err)
	}
	r := xrand.New(3)
	for i := 0; i < 2000; i++ {
		dst, _, _, ok := g2.SampleStep(0, temporal.MinTime, r)
		if !ok {
			t.Fatal("fallback failed")
		}
		if dst == 5 {
			t.Fatal("tombstoned dominant edge sampled")
		}
	}
}

func TestCompactionTriggers(t *testing.T) {
	edges := make([]temporal.Edge, 20)
	for i := range edges {
		edges[i] = temporal.Edge{Src: 0, Dst: temporal.Vertex(i + 1), Time: temporal.Time(i + 1)}
	}
	g := seedGraph(t, sampling.WeightSpec{}, edges)
	// Delete 6 of 20: the 5th deletion crosses the 25% threshold and
	// compacts (leaving the 6th as a fresh tombstone on the compacted
	// vertex).
	var del []temporal.Edge
	for i := 0; i < 6; i++ {
		del = append(del, edges[i*3])
	}
	if err := g.DeleteEdges(del); err != nil {
		t.Fatal(err)
	}
	if g.NumDeleted() != 1 {
		t.Fatalf("tombstones after threshold compaction: %d, want 1", g.NumDeleted())
	}
	if g.LiveDegree(0) != 14 {
		t.Fatalf("live degree after compaction: %d, want 14", g.LiveDegree(0))
	}
	if g.Degree(0) != 15 {
		t.Fatalf("slot degree after compaction: %d, want 15 (14 live + 1 tombstone)", g.Degree(0))
	}
	// Explicit compaction clears the remainder.
	g.CompactVertex(0)
	if g.NumDeleted() != 0 || g.Degree(0) != 14 || g.Segments(0) != 1 {
		t.Fatalf("after explicit compaction: deleted=%d degree=%d segs=%d",
			g.NumDeleted(), g.Degree(0), g.Segments(0))
	}
}

func TestDeleteThenMergeDoesNotResurrect(t *testing.T) {
	g := seedGraph(t, sampling.WeightSpec{}, []temporal.Edge{
		{Src: 0, Dst: 1, Time: 1},
		{Src: 0, Dst: 2, Time: 2},
		{Src: 0, Dst: 3, Time: 3},
		{Src: 0, Dst: 4, Time: 4},
		{Src: 0, Dst: 5, Time: 5},
		{Src: 0, Dst: 6, Time: 6},
		{Src: 0, Dst: 7, Time: 7},
		{Src: 0, Dst: 8, Time: 8},
	})
	// Delete one edge (12.5%, below compaction threshold).
	if err := g.DeleteEdges([]temporal.Edge{{Src: 0, Dst: 8, Time: 8}}); err != nil {
		t.Fatal(err)
	}
	// Appending equal-sized batches forces LSM merges over the tombstone.
	for i := 0; i < 8; i++ {
		if err := g.AppendBatch([]temporal.Edge{{Src: 0, Dst: 9, Time: temporal.Time(100 + i)}}); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range snap.OutDst(0) {
		if d == 8 {
			t.Fatal("deleted edge resurrected by merge")
		}
	}
	r := xrand.New(4)
	for i := 0; i < 3000; i++ {
		dst, _, _, ok := g.SampleStep(0, temporal.MinTime, r)
		if !ok {
			t.Fatal("sample failed")
		}
		if dst == 8 {
			t.Fatal("deleted edge sampled after merges")
		}
	}
}

func TestSnapshotSkipsDeleted(t *testing.T) {
	g := seedGraph(t, sampling.WeightSpec{}, []temporal.Edge{
		{Src: 0, Dst: 1, Time: 1}, {Src: 0, Dst: 2, Time: 2},
		{Src: 0, Dst: 3, Time: 3}, {Src: 0, Dst: 4, Time: 4},
		{Src: 0, Dst: 5, Time: 5}, {Src: 0, Dst: 6, Time: 6},
		{Src: 0, Dst: 7, Time: 7}, {Src: 0, Dst: 8, Time: 8},
		{Src: 1, Dst: 2, Time: 9},
	})
	if err := g.DeleteEdges([]temporal.Edge{{Src: 0, Dst: 4, Time: 4}}); err != nil {
		t.Fatal(err)
	}
	snap, err := g.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Degree(0) != 7 {
		t.Fatalf("snapshot degree = %d, want 7", snap.Degree(0))
	}
	if snap.HasNeighbor(0, 4) {
		t.Fatal("snapshot contains deleted edge")
	}
}

func TestDeleteUnknownVertexSafe(t *testing.T) {
	g := mustNew(t, Config{})
	g.CompactVertex(5) // no-op, must not panic
	if g.LiveDegree(5) != 0 || g.LiveCandidateCount(5, 0) != 0 {
		t.Fatal("unseen vertex live accessors")
	}
}
