package dist

import (
	"math"

	"github.com/tea-graph/tea/internal/temporal"
)

// edgeBloom is a Bloom filter over directed vertex pairs, replicated to
// every partition so temporal node2vec's β test — "is the candidate a
// neighbor of the previous vertex?" (d(w,v) = 1 in Eq. 4) — can be answered
// locally even when the previous vertex's adjacency lives on another worker.
// This is the standard replicated-membership trick a networked deployment
// would use: bits-per-edge memory instead of full adjacency replication,
// with a small, quantifiable false-positive probability (false positives
// upgrade a 1/q candidate to β=1; no path is ever invalidated).
type edgeBloom struct {
	bits   []uint64
	mask   uint64
	hashes int
}

// newEdgeBloom sizes the filter at ~bitsPerEdge bits per edge (rounded to a
// power of two) with the corresponding optimal hash count.
func newEdgeBloom(numEdges int, bitsPerEdge int) *edgeBloom {
	if numEdges < 1 {
		numEdges = 1
	}
	if bitsPerEdge < 1 {
		bitsPerEdge = 10
	}
	want := uint64(numEdges) * uint64(bitsPerEdge)
	size := uint64(64)
	for size < want {
		size <<= 1
	}
	k := int(math.Round(float64(size) / float64(numEdges) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 16 {
		k = 16
	}
	return &edgeBloom{
		bits:   make([]uint64, size/64),
		mask:   size - 1,
		hashes: k,
	}
}

// mix64 is splitmix64's finalizer: a full-avalanche 64-bit mixer.
func mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func pairKey(u, v temporal.Vertex) uint64 {
	return uint64(u)<<32 | uint64(v)
}

// add inserts the directed pair (u, v).
func (b *edgeBloom) add(u, v temporal.Vertex) {
	h1 := mix64(pairKey(u, v))
	h2 := mix64(h1 ^ 0x9e3779b97f4a7c15)
	if h2 == 0 {
		h2 = 1
	}
	for i := 0; i < b.hashes; i++ {
		pos := (h1 + uint64(i)*h2) & b.mask
		b.bits[pos>>6] |= 1 << (pos & 63)
	}
}

// has reports whether (u, v) may be present (no false negatives).
func (b *edgeBloom) has(u, v temporal.Vertex) bool {
	h1 := mix64(pairKey(u, v))
	h2 := mix64(h1 ^ 0x9e3779b97f4a7c15)
	if h2 == 0 {
		h2 = 1
	}
	for i := 0; i < b.hashes; i++ {
		pos := (h1 + uint64(i)*h2) & b.mask
		if b.bits[pos>>6]&(1<<(pos&63)) == 0 {
			return false
		}
	}
	return true
}

// memoryBytes reports the filter footprint.
func (b *edgeBloom) memoryBytes() int64 { return int64(len(b.bits)) * 8 }
