// Package dist implements the distributed-execution direction §4.4 of the
// paper sketches as future work: "replacing the rejection sampling of
// KnightKing by our PAT or HPAT in order to support distributed execution".
//
// The vertex space is hash-partitioned across workers. Each worker holds the
// out-edges and the HPAT index of its own vertices only, and walkers migrate
// between workers in bulk-synchronous rounds, exactly the walker-centric
// message model of KnightKing — but every sampling step uses the local HPAT
// instead of rejection, so one message per step suffices (rejection would
// need a round trip per trial).
//
// Workers are goroutines within one process (this repository's substitute
// for a multi-node cluster; see DESIGN.md): the partitioning, message
// volume, and round structure are exactly what a networked deployment would
// see, which is what the tests and metrics verify.
package dist

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"github.com/tea-graph/tea/internal/hpat"
	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/shard"
	"github.com/tea-graph/tea/internal/stats"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

// Config parameterizes a simulated cluster.
type Config struct {
	// Partitions is the worker count; vertices are assigned by the shared
	// shard.Partitioner consistent-hash ring (plain id%Partitions degenerates
	// under strided or clustered vertex ids). Must be ≥ 1.
	Partitions int
	// Threads bounds index-construction parallelism per partition.
	Threads int
	// Node2Vec, if non-nil, runs temporal node2vec: the β ∈ {1/p, 1, 1/q}
	// dynamic parameter is applied by rejection at each step, with the
	// neighbor test answered by a replicated edge Bloom filter (see
	// edgeBloom) because the previous vertex's adjacency may live on another
	// worker.
	Node2Vec *Node2VecParams
}

// Node2VecParams configures distributed temporal node2vec.
type Node2VecParams struct {
	// P and Q are node2vec's return and in-out parameters (must be > 0).
	P, Q float64
	// BloomBitsPerEdge sizes the replicated membership filter; 0 selects 16
	// (false-positive probability ≈ 4e-4, which can only upgrade a distant
	// candidate's β from 1/q to 1).
	BloomBitsPerEdge int
}

// walker is one in-flight walk's migrating state. The rng stream is derived
// from the walk id alone, so results are independent of the partitioning —
// the key determinism property the tests rely on.
type walker struct {
	id      uint64
	current temporal.Vertex
	arrival temporal.Time
	steps   int32 // steps taken so far
	prev    temporal.Vertex
	hasPrev bool
}

// partition is one simulated worker: the subgraph of its owned vertices'
// out-edges plus their HPAT.
type partition struct {
	g   *temporal.Graph // full vertex space, owned out-edges only
	idx *hpat.Index
}

// Cluster is a set of partitions executing temporal walks cooperatively.
type Cluster struct {
	parts []*partition
	ring  *shard.Partitioner // shared with the real deployment (internal/shard)
	numV  int
	spec  sampling.WeightSpec
	n2v   *Node2VecParams
	bloom *edgeBloom // replicated neighbor membership for node2vec's β
}

// New partitions the graph and builds each worker's HPAT over its own
// vertices' adjacency.
func New(g *temporal.Graph, spec sampling.WeightSpec, cfg Config) (*Cluster, error) {
	if cfg.Partitions < 1 {
		return nil, fmt.Errorf("dist: need at least one partition, got %d", cfg.Partitions)
	}
	if spec.Custom != nil {
		return nil, fmt.Errorf("dist: custom weight functions are not supported in distributed mode")
	}
	threads := cfg.Threads
	if threads < 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	ring, err := shard.NewPartitioner(cfg.Partitions)
	if err != nil {
		return nil, err
	}
	numV := g.NumVertices()
	c := &Cluster{ring: ring, numV: numV, spec: spec}
	if cfg.Node2Vec != nil {
		if cfg.Node2Vec.P <= 0 || cfg.Node2Vec.Q <= 0 {
			return nil, fmt.Errorf("dist: node2vec parameters must be positive")
		}
		n2v := *cfg.Node2Vec
		c.n2v = &n2v
		c.bloom = newEdgeBloom(g.NumEdges(), n2v.BloomBitsPerEdge)
		for _, e := range g.Edges(nil) {
			c.bloom.add(e.Src, e.Dst)
		}
	}

	// Linear-time weights reference the graph's minimum timestamp; anchor it
	// globally so every partition computes identical per-vertex
	// distributions regardless of its local time range.
	if spec.Kind == sampling.WeightLinearTime {
		globalMin, _ := g.TimeRange()
		spec = sampling.WeightSpec{Custom: func(t temporal.Time) float64 {
			return float64(t-globalMin) + 1
		}}
		c.spec = spec
	}

	// Split the edge stream by owner of the source vertex.
	perPart := make([][]temporal.Edge, cfg.Partitions)
	all := g.Edges(nil)
	for _, e := range all {
		p := ring.Owner(e.Src)
		perPart[p] = append(perPart[p], e)
	}
	for pid := 0; pid < cfg.Partitions; pid++ {
		sub, err := temporal.FromEdges(perPart[pid], temporal.WithNumVertices(numV))
		if err != nil && len(perPart[pid]) != 0 {
			return nil, fmt.Errorf("dist: building partition %d: %w", pid, err)
		}
		if sub == nil {
			sub, _ = temporal.FromEdges(nil, temporal.WithNumVertices(numV))
		}
		sub.PrecomputeCandidates(threads)
		w, err := sampling.BuildGraphWeights(sub, spec, threads)
		if err != nil {
			return nil, fmt.Errorf("dist: weights for partition %d: %w", pid, err)
		}
		c.parts = append(c.parts, &partition{
			g:   sub,
			idx: hpat.Build(w, hpat.Config{Threads: threads}),
		})
	}
	return c, nil
}

// Partitions returns the worker count.
func (c *Cluster) Partitions() int { return len(c.parts) }

// owner returns the partition owning vertex u (consistent-hash ring shared
// with internal/shard, so the simulator and the real deployment agree).
func (c *Cluster) owner(u temporal.Vertex) int { return c.ring.Owner(u) }

// MemoryBytes reports the summed per-partition index footprint, counting
// the replicated Bloom filter once per partition (each worker holds a copy).
func (c *Cluster) MemoryBytes() int64 {
	total := int64(0)
	for _, p := range c.parts {
		total += p.idx.MemoryBytes() + p.g.MemoryBytes()
		if c.bloom != nil {
			total += c.bloom.memoryBytes()
		}
	}
	return total
}

// RunConfig parameterizes a distributed walk run.
type RunConfig struct {
	// WalksPerVertex is R; default 1. Length is L; default 80.
	WalksPerVertex int
	Length         int
	// Seed drives every walker's stream.
	Seed uint64
	// KeepPaths stores full walks in the result.
	KeepPaths bool
}

// Result aggregates a distributed run.
type Result struct {
	Cost     stats.Cost
	Duration time.Duration
	// Rounds is the number of bulk-synchronous supersteps executed.
	Rounds int
	// Messages is the number of walker migrations that crossed a partition
	// boundary — the network traffic a real deployment would pay.
	Messages int64
	// LocalMoves counts migrations that stayed on-worker.
	LocalMoves int64
	// Paths holds completed walks when KeepPaths is set, indexed by walk id.
	Paths [][]temporal.Vertex
}

// Run executes R walks of length L from every vertex across the cluster in
// bulk-synchronous rounds: each round, every partition advances the walkers
// currently resident on it by one step and emits them to their next owner.
func (c *Cluster) Run(cfg RunConfig) (*Result, error) {
	if cfg.WalksPerVertex <= 0 {
		cfg.WalksPerVertex = 1
	}
	if cfg.Length <= 0 {
		cfg.Length = 80
	}
	start := time.Now()
	numParts := len(c.parts)
	totalWalks := c.numV * cfg.WalksPerVertex

	res := &Result{}
	if cfg.KeepPaths {
		res.Paths = make([][]temporal.Vertex, totalWalks)
	}

	// Seed every walker at its source's owner.
	inboxes := make([][]walker, numParts)
	for wi := 0; wi < totalWalks; wi++ {
		src := temporal.Vertex(wi / cfg.WalksPerVertex)
		w := walker{
			id:      uint64(wi),
			current: src,
			arrival: temporal.MinTime,
		}
		inboxes[c.owner(src)] = append(inboxes[c.owner(src)], w)
		res.Cost.WalksStarted++
		if cfg.KeepPaths {
			res.Paths[wi] = append(res.Paths[wi], src)
		}
	}

	rootSeed := cfg.Seed

	inFlight := totalWalks
	for inFlight > 0 {
		res.Rounds++
		outs := make([]stepOut, numParts)
		var wg sync.WaitGroup
		for pid := 0; pid < numParts; pid++ {
			if len(inboxes[pid]) == 0 {
				continue
			}
			wg.Add(1)
			go func(pid int) {
				defer wg.Done()
				outs[pid] = c.parts[pid].advance(c, inboxes[pid], cfg, rootSeed, numParts)
			}(pid)
		}
		wg.Wait()

		// Exchange: deterministic concatenation in partition order.
		next := make([][]walker, numParts)
		for pid := 0; pid < numParts; pid++ {
			out := &outs[pid]
			if out.outbox == nil {
				continue
			}
			res.Cost.Add(out.cost)
			for _, h := range out.hops {
				if cfg.KeepPaths {
					res.Paths[h.walkID] = append(res.Paths[h.walkID], h.to)
				}
			}
			for dst := 0; dst < numParts; dst++ {
				if len(out.outbox[dst]) == 0 {
					continue
				}
				if dst == pid {
					res.LocalMoves += int64(len(out.outbox[dst]))
				} else {
					res.Messages += int64(len(out.outbox[dst]))
				}
				next[dst] = append(next[dst], out.outbox[dst]...)
			}
		}
		inFlight = 0
		for _, box := range next {
			inFlight += len(box)
		}
		inboxes = next
	}
	// Completed/dead-end accounting happened inside advance.
	res.Duration = time.Since(start)
	return res, nil
}

type hopRecord struct {
	walkID uint64
	to     temporal.Vertex
}

// stepOut is one partition's output for one superstep.
type stepOut struct {
	outbox [][]walker // destination partition -> walkers
	cost   stats.Cost
	hops   []hopRecord
}

// betaTrialCap bounds the node2vec rejection loop per step; with the
// paper's p=0.5, q=2 acceptance is ≥ 1/4 per trial.
const betaTrialCap = 4096

// advance moves every inbox walker one step using the partition's local HPAT
// and routes survivors to their next owner.
func (p *partition) advance(c *Cluster, inbox []walker, cfg RunConfig, seed uint64, numParts int) (out stepOut) {
	out.outbox = make([][]walker, numParts)
	root := xrand.New(seed)
	var maxBeta float64
	if c.n2v != nil {
		maxBeta = 1
		if 1/c.n2v.P > maxBeta {
			maxBeta = 1 / c.n2v.P
		}
		if 1/c.n2v.Q > maxBeta {
			maxBeta = 1 / c.n2v.Q
		}
	}
	for _, w := range inbox {
		r := root.Split(w.id)
		// Re-derive the walker's stream position: each step consumes a
		// deterministic sub-stream so migration does not need to ship RNG
		// state (an id + step counter is enough).
		r = r.Split(uint64(w.steps))
		k := p.g.CandidateCount(w.current, w.arrival)
		if k == 0 {
			out.cost.WalksDeadEnded++
			continue
		}
		var (
			idx int
			ok  bool
		)
		accepted := false
		for trial := 0; trial < betaTrialCap; trial++ {
			var ev int64
			idx, ev, ok = p.idx.Sample(w.current, k, r)
			out.cost.EdgesEvaluated += ev
			if !ok {
				break
			}
			if c.n2v == nil || !w.hasPrev {
				accepted = true
				break
			}
			cand, _ := p.g.EdgeAt(w.current, idx)
			var beta float64
			switch {
			case cand == w.prev:
				beta = 1 / c.n2v.P
			case c.bloom.has(w.prev, cand):
				beta = 1
			default:
				beta = 1 / c.n2v.Q
			}
			out.cost.Trials++
			if r.Range(maxBeta) <= beta {
				accepted = true
				break
			}
			out.cost.Rejected++
		}
		if !ok {
			out.cost.WalksDeadEnded++
			continue
		}
		_ = accepted // trial-cap exhaustion force-accepts the last proposal
		dst, at := p.g.EdgeAt(w.current, idx)
		out.cost.Steps++
		out.hops = append(out.hops, hopRecord{walkID: w.id, to: dst})
		w.prev, w.hasPrev = w.current, true
		w.current = dst
		w.arrival = at
		w.steps++
		if int(w.steps) >= cfg.Length {
			out.cost.WalksCompleted++
			continue
		}
		owner := c.owner(dst)
		out.outbox[owner] = append(out.outbox[owner], w)
	}
	return out
}
