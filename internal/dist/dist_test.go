package dist

import (
	"math"
	"reflect"
	"testing"

	"github.com/tea-graph/tea/internal/sampling"
	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/testutil"
)

func TestNewValidation(t *testing.T) {
	g := temporal.CommuteGraph()
	if _, err := New(g, sampling.WeightSpec{}, Config{Partitions: 0}); err == nil {
		t.Fatal("zero partitions accepted")
	}
	spec := sampling.WeightSpec{Custom: func(temporal.Time) float64 { return 1 }}
	if _, err := New(g, spec, Config{Partitions: 2}); err == nil {
		t.Fatal("custom weight accepted")
	}
	c, err := New(g, sampling.WeightSpec{}, Config{Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Partitions() != 3 {
		t.Fatalf("partitions = %d", c.Partitions())
	}
	if c.MemoryBytes() <= 0 {
		t.Fatal("memory")
	}
}

// The central property: results are identical regardless of the partition
// count — walker randomness depends only on walk id and step, and every
// partition samples the same per-vertex distributions.
func TestPartitionCountInvariance(t *testing.T) {
	g := testutil.RandomGraph(t, 150, 4000, 800, 31)
	specs := []sampling.WeightSpec{
		{Kind: sampling.WeightUniform},
		{Kind: sampling.WeightLinearTime},
		{Kind: sampling.WeightLinearRank},
		sampling.Exponential(0.01),
	}
	for _, spec := range specs {
		var ref *Result
		for _, parts := range []int{1, 2, 5} {
			c, err := New(g, spec, Config{Partitions: parts})
			if err != nil {
				t.Fatal(err)
			}
			res, err := c.Run(RunConfig{Length: 15, Seed: 9, KeepPaths: true, WalksPerVertex: 2})
			if err != nil {
				t.Fatal(err)
			}
			if ref == nil {
				ref = res
				continue
			}
			if res.Cost.Steps != ref.Cost.Steps {
				t.Fatalf("%v: steps %d (parts=%d) vs %d (parts=1)", spec.Kind, res.Cost.Steps, parts, ref.Cost.Steps)
			}
			if !reflect.DeepEqual(res.Paths, ref.Paths) {
				t.Fatalf("%v: paths differ between 1 and %d partitions", spec.Kind, parts)
			}
		}
	}
}

// The satellite bugfix this PR makes: id%partitions sent every strided id
// k·P+c to a single partition (a graph whose active vertices are minted with
// stride 4 put 100% of the load on one of 4 workers). The shared
// consistent-hash partitioner must keep partition load within 1.2× the mean
// even on an adversarially strided-id graph.
func TestStridedIDPartitionSkew(t *testing.T) {
	const parts = 4
	// Only vertices with id ≡ 0 (mod parts) carry edges: under the old
	// modulo assignment, partition 0 owned every edge.
	var edges []temporal.Edge
	const active = 2000
	for i := 0; i < active; i++ {
		src := temporal.Vertex(i * parts)
		dst := temporal.Vertex(((i + 7) % active) * parts)
		edges = append(edges, temporal.Edge{Src: src, Dst: dst, Time: temporal.Time(i%97 + 1)})
		edges = append(edges, temporal.Edge{Src: src, Dst: temporal.Vertex(((i + 13) % active) * parts), Time: temporal.Time(i%89 + 2)})
	}
	g := temporal.MustFromEdges(edges)
	c, err := New(g, sampling.WeightSpec{}, Config{Partitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, parts)
	for i := 0; i < active; i++ {
		counts[c.owner(temporal.Vertex(i*parts))]++
	}
	mean := float64(active) / float64(parts)
	for part, n := range counts {
		if ratio := float64(n) / mean; ratio > 1.2 {
			t.Fatalf("partition %d owns %.2f× the mean load of strided-id vertices (counts=%v)", part, ratio, counts)
		}
	}
	// And the cluster still walks correctly on the strided graph.
	res, err := c.Run(RunConfig{Length: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Steps == 0 || res.Cost.WalksStarted != res.Cost.WalksCompleted+res.Cost.WalksDeadEnded {
		t.Fatalf("strided graph run broken: %+v", res.Cost)
	}
}

func TestWalksAreTemporalAndComplete(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 3000, 600, 33)
	c, err := New(g, sampling.Exponential(0.01), Config{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(RunConfig{Length: 10, Seed: 3, KeepPaths: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.WalksStarted != int64(g.NumVertices()) {
		t.Fatalf("started %d", res.Cost.WalksStarted)
	}
	if res.Cost.WalksCompleted+res.Cost.WalksDeadEnded != res.Cost.WalksStarted {
		t.Fatalf("accounting: %+v", res.Cost)
	}
	steps := int64(0)
	for wi, p := range res.Paths {
		if p[0] != temporal.Vertex(wi) {
			t.Fatalf("walk %d starts at %d", wi, p[0])
		}
		// Edges must exist in the full graph.
		for i := 0; i+1 < len(p); i++ {
			if !g.HasNeighbor(p[i], p[i+1]) {
				t.Fatalf("walk %d uses non-edge %d->%d", wi, p[i], p[i+1])
			}
		}
		steps += int64(len(p) - 1)
	}
	if steps != res.Cost.Steps {
		t.Fatalf("path steps %d vs cost %d", steps, res.Cost.Steps)
	}
	if res.Rounds <= 0 {
		t.Fatal("no rounds recorded")
	}
}

// Message accounting: with one partition everything is a local move; with
// many partitions cross-worker traffic appears and approximates the
// (parts-1)/parts share of moves under hash partitioning.
func TestMessageAccounting(t *testing.T) {
	g := testutil.RandomGraph(t, 200, 6000, 1200, 35)
	single, err := New(g, sampling.WeightSpec{}, Config{Partitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	sres, err := single.Run(RunConfig{Length: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sres.Messages != 0 {
		t.Fatalf("single partition sent %d messages", sres.Messages)
	}
	multi, err := New(g, sampling.WeightSpec{}, Config{Partitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	mres, err := multi.Run(RunConfig{Length: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if mres.Messages == 0 {
		t.Fatal("no cross-partition traffic with 4 partitions")
	}
	moves := mres.Messages + mres.LocalMoves
	if moves != sres.Messages+sres.LocalMoves {
		t.Fatalf("total moves differ: %d vs %d", moves, sres.Messages+sres.LocalMoves)
	}
	frac := float64(mres.Messages) / float64(moves)
	if frac < 0.5 || frac > 0.95 {
		t.Fatalf("cross-partition share %.2f, want ≈ 3/4", frac)
	}
}

// Distributed sampling must match the single-machine engine's transition
// distribution: compare first-hop frequencies out of the commute hub.
func TestMatchesEngineDistribution(t *testing.T) {
	g := temporal.CommuteGraph()
	c, err := New(g, sampling.WeightSpec{Kind: sampling.WeightLinearRank}, Config{Partitions: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(RunConfig{Length: 1, Seed: 5, KeepPaths: true, WalksPerVertex: 40000})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]float64, 8)
	total := 0.0
	for wi, p := range res.Paths {
		if temporal.Vertex(wi/40000) != 7 || len(p) < 2 {
			continue
		}
		counts[p[1]]++
		total++
	}
	// Weights 7..1 toward vertices 6..0.
	for dst := 0; dst <= 6; dst++ {
		want := float64(dst+1) / 28
		got := counts[dst] / total
		if diff := got - want; diff > 0.01 || diff < -0.01 {
			t.Fatalf("dst %d frequency %.4f, want %.4f", dst, got, want)
		}
	}
}

func TestEmptyPartitionGraph(t *testing.T) {
	// A graph where one partition owns only edgeless vertices.
	g := temporal.MustFromEdges([]temporal.Edge{{Src: 0, Dst: 1, Time: 1}}, temporal.WithNumVertices(4))
	c, err := New(g, sampling.WeightSpec{}, Config{Partitions: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(RunConfig{Length: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Steps != 1 {
		t.Fatalf("steps = %d, want 1", res.Cost.Steps)
	}
}

func TestBloomBasics(t *testing.T) {
	b := newEdgeBloom(1000, 16)
	b.add(1, 2)
	b.add(7, 4)
	if !b.has(1, 2) || !b.has(7, 4) {
		t.Fatal("false negative")
	}
	if b.has(2, 1) {
		t.Fatal("directedness lost (or an unlucky false positive; re-seed)")
	}
	// False-positive rate at 16 bits/edge must be far below 1%.
	fp := 0
	for i := 0; i < 100000; i++ {
		if b.has(temporal.Vertex(1000+i), temporal.Vertex(i)) {
			fp++
		}
	}
	if fp > 200 {
		t.Fatalf("false positives: %d / 100000", fp)
	}
	if b.memoryBytes() <= 0 {
		t.Fatal("memory")
	}
}

func TestBloomDegenerateSizes(t *testing.T) {
	b := newEdgeBloom(0, 0)
	b.add(3, 4)
	if !b.has(3, 4) {
		t.Fatal("tiny filter lost an edge")
	}
}

func TestDistNode2VecValidation(t *testing.T) {
	g := temporal.CommuteGraph()
	_, err := New(g, sampling.Exponential(0.5), Config{Partitions: 2, Node2Vec: &Node2VecParams{P: 0, Q: 2}})
	if err == nil {
		t.Fatal("p=0 accepted")
	}
}

// Distributed node2vec must match the single-machine engine's second-hop
// distribution (the bloom's ~4e-4 false positives are far below the test's
// statistical tolerance).
func TestDistNode2VecMatchesEngine(t *testing.T) {
	edges := []temporal.Edge{
		{Src: 0, Dst: 1, Time: 1},
		{Src: 0, Dst: 2, Time: 1},
		{Src: 1, Dst: 0, Time: 2},
		{Src: 1, Dst: 2, Time: 3},
		{Src: 1, Dst: 3, Time: 4},
	}
	g := temporal.MustFromEdges(edges)
	c, err := New(g, sampling.Exponential(0.5), Config{
		Partitions: 3,
		Node2Vec:   &Node2VecParams{P: 0.5, Q: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	const walks = 60000
	res, err := c.Run(RunConfig{Length: 2, Seed: 8, KeepPaths: true, WalksPerVertex: walks})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Trials == 0 {
		t.Fatal("β rejection never exercised")
	}
	counts := map[temporal.Vertex]float64{}
	total := 0.0
	for wi, p := range res.Paths {
		if temporal.Vertex(wi/walks) != 0 || len(p) != 3 || p[1] != 1 {
			continue
		}
		counts[p[2]]++
		total++
	}
	// Exact weights (see core's TestNode2VecExactDistribution): δ·β for
	// candidates 0, 2, 3 with δ = e^{0.5(t-4)} and β = 2, 1, 0.5.
	w0 := 2.0 * math.Exp(-1)
	w2 := 1.0 * math.Exp(-0.5)
	w3 := 0.5
	sumW := w0 + w2 + w3
	for v, w := range map[temporal.Vertex]float64{0: w0, 2: w2, 3: w3} {
		want := w / sumW
		got := counts[v] / total
		if math.Abs(got-want) > 0.012 {
			t.Fatalf("second hop %d frequency %.4f, want %.4f", v, got, want)
		}
	}
}

// Node2vec partition invariance: the bloom and rng are partition-independent.
func TestDistNode2VecPartitionInvariance(t *testing.T) {
	g := testutil.RandomGraph(t, 100, 3000, 600, 41)
	var ref *Result
	for _, parts := range []int{1, 4} {
		c, err := New(g, sampling.Exponential(0.01), Config{
			Partitions: parts,
			Node2Vec:   &Node2VecParams{P: 0.5, Q: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(RunConfig{Length: 10, Seed: 6, KeepPaths: true})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res.Paths, ref.Paths) {
			t.Fatal("node2vec paths differ across partition counts")
		}
	}
}
