package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestCostAddAndRates(t *testing.T) {
	var c Cost
	c.Add(Cost{Steps: 10, EdgesEvaluated: 55, Trials: 20, BytesRead: 4096})
	c.Add(Cost{Steps: 10, EdgesEvaluated: 45, Rejected: 5, ReadOps: 3})
	if c.Steps != 20 || c.EdgesEvaluated != 100 || c.Trials != 20 {
		t.Fatalf("merge wrong: %+v", c)
	}
	if c.EdgesPerStep() != 5 {
		t.Fatalf("EdgesPerStep = %v", c.EdgesPerStep())
	}
	if c.TrialsPerStep() != 1 {
		t.Fatalf("TrialsPerStep = %v", c.TrialsPerStep())
	}
}

func TestCostZeroSteps(t *testing.T) {
	var c Cost
	if c.EdgesPerStep() != 0 || c.TrialsPerStep() != 0 {
		t.Fatal("zero-step rates should be 0")
	}
}

func TestCostString(t *testing.T) {
	c := Cost{Steps: 2, EdgesEvaluated: 11}
	if !strings.Contains(c.String(), "edges/step=5.50") {
		t.Fatalf("String = %q", c.String())
	}
}

func TestWelfordKnown(t *testing.T) {
	var w Welford
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe(x)
	}
	if w.N() != 8 {
		t.Fatalf("N = %d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %v", w.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if math.Abs(w.Variance()-32.0/7) > 1e-12 {
		t.Fatalf("Variance = %v", w.Variance())
	}
	if math.Abs(w.StdDev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("StdDev = %v", w.StdDev())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Variance() != 0 {
		t.Fatal("empty accumulator not zero")
	}
	w.Observe(42)
	if w.Mean() != 42 || w.Variance() != 0 {
		t.Fatal("single observation wrong")
	}
}

func TestWelfordMergeMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	var all, a, b Welford
	for i := 0; i < 1000; i++ {
		x := r.NormFloat64()*3 + 7
		all.Observe(x)
		if i%2 == 0 {
			a.Observe(x)
		} else {
			b.Observe(x)
		}
	}
	a.Merge(b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d", a.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Fatalf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Fatalf("merged variance %v vs %v", a.Variance(), all.Variance())
	}
}

func TestWelfordMergeEmptyCases(t *testing.T) {
	var a, b Welford
	a.Merge(b) // both empty
	if a.N() != 0 || a.Mean() != 0 || a.Variance() != 0 {
		t.Fatal("empty merge corrupted state")
	}
	b.Observe(3)
	a.Merge(b)
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatal("merge into empty failed")
	}
	// Merging an empty accumulator into a populated one is a no-op.
	a.Merge(Welford{})
	if a.N() != 1 || a.Mean() != 3 || a.Variance() != 0 {
		t.Fatal("merging empty into populated corrupted state")
	}
}

func TestWelfordMergeSingleSamples(t *testing.T) {
	// Two single-sample accumulators must merge to the same state as
	// observing both samples sequentially: n=2, mean 5, sample variance
	// ((3-5)² + (7-5)²) / 1 = 8.
	var a, b Welford
	a.Observe(3)
	b.Observe(7)
	a.Merge(b)
	if a.N() != 2 || math.Abs(a.Mean()-5) > 1e-12 {
		t.Fatalf("merged n=%d mean=%v", a.N(), a.Mean())
	}
	if math.Abs(a.Variance()-8) > 1e-12 {
		t.Fatalf("merged variance = %v, want 8", a.Variance())
	}

	// Single sample into a populated accumulator, against sequential truth.
	var seq, multi, single Welford
	for _, x := range []float64{1, 2, 3} {
		seq.Observe(x)
		multi.Observe(x)
	}
	seq.Observe(10)
	single.Observe(10)
	multi.Merge(single)
	if multi.N() != seq.N() || math.Abs(multi.Mean()-seq.Mean()) > 1e-12 ||
		math.Abs(multi.Variance()-seq.Variance()) > 1e-12 {
		t.Fatalf("merge %v/%v vs sequential %v/%v", multi.Mean(), multi.Variance(), seq.Mean(), seq.Variance())
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(5)
	for _, v := range []int{0, 1, 1, 4, 9, -1} {
		h.Observe(v)
	}
	if h.Count(1) != 2 || h.Count(0) != 1 || h.Count(4) != 1 {
		t.Fatalf("counts wrong: %+v", h)
	}
	if h.Count(9) != 0 {
		t.Fatal("out-of-range Count should be 0")
	}
	if h.Overflow() != 2 {
		t.Fatalf("Overflow = %d", h.Overflow())
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
}

// Count must return 0 for any out-of-range value even when out-of-range
// observations were recorded: those are reported only via Overflow, never
// attributed to a bucket.
func TestHistogramOverflowSemantics(t *testing.T) {
	h := NewHistogram(3)
	h.Observe(7)
	h.Observe(-2)
	h.Observe(1)
	if h.Overflow() != 2 {
		t.Fatalf("Overflow = %d, want 2", h.Overflow())
	}
	for _, v := range []int{7, -2, 3, -1} {
		if h.Count(v) != 0 {
			t.Fatalf("Count(%d) = %d, want 0 for out-of-range", v, h.Count(v))
		}
	}
	if h.Count(1) != 1 {
		t.Fatalf("in-range count lost: Count(1) = %d", h.Count(1))
	}
	if h.Total() != 3 {
		t.Fatalf("Total = %d, want overflow included", h.Total())
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(3), NewHistogram(3)
	a.Observe(1)
	b.Observe(1)
	b.Observe(5)
	a.Merge(b)
	if a.Count(1) != 2 || a.Overflow() != 1 {
		t.Fatalf("merge wrong: %+v", a)
	}
}

func TestHistogramMergePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewHistogram(3).Merge(NewHistogram(4))
}

func TestChiSquareExact(t *testing.T) {
	// Perfect proportions give statistic 0.
	stat, df, err := ChiSquare([]int64{10, 20, 30}, []float64{1, 2, 3})
	if err != nil || stat != 0 || df != 2 {
		t.Fatalf("stat=%v df=%d err=%v", stat, df, err)
	}
}

func TestChiSquareZeroWeightViolation(t *testing.T) {
	stat, _, err := ChiSquare([]int64{5, 1}, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(stat, 1) {
		t.Fatalf("impossible observation gave stat %v", stat)
	}
}

func TestChiSquareZeroWeightOK(t *testing.T) {
	stat, df, err := ChiSquare([]int64{5, 0}, []float64{1, 0})
	if err != nil || stat != 0 || df != 1 {
		t.Fatalf("stat=%v df=%d err=%v", stat, df, err)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, err := ChiSquare([]int64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, _, err := ChiSquare([]int64{1}, []float64{-1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if _, _, err := ChiSquare([]int64{0}, []float64{1}); err == nil {
		t.Fatal("zero observations accepted")
	}
	if _, _, err := ChiSquare([]int64{1}, []float64{0}); err == nil {
		t.Fatal("zero total weight accepted")
	}
}

func TestChiSquareDetectsBias(t *testing.T) {
	// Heavily skewed observations against uniform weights must exceed the
	// generous limit.
	obs := []int64{1000, 100, 100, 100}
	stat, df, err := ChiSquare(obs, []float64{1, 1, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if stat <= ChiSquareGenerousLimit(df) {
		t.Fatalf("biased sample passed: stat %.1f", stat)
	}
}
