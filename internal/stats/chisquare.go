package stats

import (
	"fmt"
	"math"
)

// ChiSquare computes Pearson's χ² statistic for observed counts against an
// unnormalized expected-weight vector, together with the degrees of freedom.
// Zero-weight categories must have zero observations (they contribute an
// immediate +Inf otherwise, which is the correct verdict for a sampler that
// emitted an impossible value).
func ChiSquare(observed []int64, weights []float64) (stat float64, df int, err error) {
	if len(observed) != len(weights) {
		return 0, 0, fmt.Errorf("stats: %d observations vs %d weights", len(observed), len(weights))
	}
	totalW := 0.0
	var totalN int64
	for i, w := range weights {
		if w < 0 {
			return 0, 0, fmt.Errorf("stats: negative weight %v at %d", w, i)
		}
		totalW += w
		totalN += observed[i]
	}
	if !(totalW > 0) || totalN == 0 {
		return 0, 0, fmt.Errorf("stats: degenerate chi-square input")
	}
	df = -1
	for i, w := range weights {
		if w == 0 {
			if observed[i] != 0 {
				return math.Inf(1), len(weights) - 1, nil
			}
			continue
		}
		df++
		expect := float64(totalN) * w / totalW
		d := float64(observed[i]) - expect
		stat += d * d / expect
	}
	if df < 1 {
		df = 1
	}
	return stat, df, nil
}

// ChiSquareGenerousLimit returns a rejection threshold far out in the tail
// (beyond the 99.99th percentile for the df ranges used in sampler tests):
// statistical noise passes, systematic bias fails. Useful for randomized
// test suites where strict p-values would flake.
func ChiSquareGenerousLimit(df int) float64 {
	d := float64(df)
	return d + 5*math.Sqrt(2*d) + 12
}
