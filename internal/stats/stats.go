// Package stats provides the measurement substrate of the engine: step-level
// cost counters (the "#edges/step" metric of Figure 2, trial counts,
// simulated I/O volume), streaming mean/variance, and simple histograms.
// Counters are plain structs merged explicitly — workers keep private copies
// and combine at the end, so the sampling hot path never touches atomics.
package stats

import (
	"fmt"
	"math"
)

// Cost accumulates the work performed by a walk or a sampler.
type Cost struct {
	Steps          int64 // edges traversed by walkers
	EdgesEvaluated int64 // array slots / edges examined while sampling
	Trials         int64 // rejection proposals (KnightKing-style samplers, β tests)
	Rejected       int64 // rejected proposals
	BytesRead      int64 // out-of-core bytes fetched
	ReadOps        int64 // out-of-core read operations
	ReadRetries    int64 // out-of-core reads retried after transient faults
	WalksStarted   int64
	WalksCompleted int64 // walks that reached the target length
	WalksDeadEnded int64 // walks that ran out of temporal candidates
	WalksCancelled int64 // walks cut short by context cancellation, not by the graph
	WalksPanicked  int64 // walks aborted by a recovered panic in user code
}

// WalksFinished returns the terminal classifications summed; a run that was
// not torn down mid-accounting satisfies WalksFinished() == WalksStarted.
func (c Cost) WalksFinished() int64 {
	return c.WalksCompleted + c.WalksDeadEnded + c.WalksCancelled + c.WalksPanicked
}

// Add merges other into c.
func (c *Cost) Add(other Cost) {
	c.Steps += other.Steps
	c.EdgesEvaluated += other.EdgesEvaluated
	c.Trials += other.Trials
	c.Rejected += other.Rejected
	c.BytesRead += other.BytesRead
	c.ReadOps += other.ReadOps
	c.ReadRetries += other.ReadRetries
	c.WalksStarted += other.WalksStarted
	c.WalksCompleted += other.WalksCompleted
	c.WalksDeadEnded += other.WalksDeadEnded
	c.WalksCancelled += other.WalksCancelled
	c.WalksPanicked += other.WalksPanicked
}

// EdgesPerStep returns the Figure 2 metric: average edges evaluated per
// sampling step. Zero steps yield zero.
func (c Cost) EdgesPerStep() float64 {
	if c.Steps == 0 {
		return 0
	}
	return float64(c.EdgesEvaluated) / float64(c.Steps)
}

// TrialsPerStep returns average rejection proposals per step.
func (c Cost) TrialsPerStep() float64 {
	if c.Steps == 0 {
		return 0
	}
	return float64(c.Trials) / float64(c.Steps)
}

// String renders the headline numbers.
func (c Cost) String() string {
	return fmt.Sprintf("steps=%d edges/step=%.2f trials/step=%.2f bytes=%d",
		c.Steps, c.EdgesPerStep(), c.TrialsPerStep(), c.BytesRead)
}

// Welford tracks a running mean and variance without storing samples.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Observe adds one sample.
func (w *Welford) Observe(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the sample count.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (0 for no samples).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the unbiased sample variance (0 for fewer than 2 samples).
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Merge combines another Welford accumulator into w (Chan et al.).
func (w *Welford) Merge(o Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = o
		return
	}
	n := w.n + o.n
	d := o.mean - w.mean
	w.mean += d * float64(o.n) / float64(n)
	w.m2 += o.m2 + d*d*float64(w.n)*float64(o.n)/float64(n)
	w.n = n
}

// Histogram is a fixed-bucket histogram over [0, len(buckets)) with an
// overflow bucket; bucket i counts values equal to i.
type Histogram struct {
	counts   []int64
	overflow int64
}

// NewHistogram creates a histogram of n exact-value buckets.
func NewHistogram(n int) *Histogram {
	return &Histogram{counts: make([]int64, n)}
}

// Observe adds a value.
func (h *Histogram) Observe(v int) {
	if v >= 0 && v < len(h.counts) {
		h.counts[v]++
		return
	}
	h.overflow++
}

// Count returns the number of observations of exactly v; out-of-range values
// are reported via Overflow.
func (h *Histogram) Count(v int) int64 {
	if v >= 0 && v < len(h.counts) {
		return h.counts[v]
	}
	return 0
}

// Overflow returns the count of out-of-range observations.
func (h *Histogram) Overflow() int64 { return h.overflow }

// Total returns all observations.
func (h *Histogram) Total() int64 {
	t := h.overflow
	for _, c := range h.counts {
		t += c
	}
	return t
}

// Merge combines another histogram with identical bucketing into h.
func (h *Histogram) Merge(o *Histogram) {
	if len(o.counts) != len(h.counts) {
		panic("stats: merging histograms with different bucket counts")
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.overflow += o.overflow
}
