package sampling

import (
	"github.com/tea-graph/tea/internal/xrand"
)

// PrefixMax stores M[i] = max(w_0..w_{i-1}) over a newest-first weight array,
// so a rejection sampler can bound the envelope of any candidate prefix in
// O(1). KnightKing-style engines need this: their acceptance test scales the
// second random number to the maximum candidate weight (§2.2, Fig. 3d).
type PrefixMax []float64

// NewPrefixMax builds the running-maximum array for weights.
func NewPrefixMax(weights []float64) PrefixMax {
	m := make(PrefixMax, len(weights)+1)
	best := 0.0
	for i, w := range weights {
		if w > best {
			best = w
		}
		m[i+1] = best
	}
	return m
}

// Max returns the maximum weight among the k-element prefix.
func (m PrefixMax) Max(k int) float64 { return m[k] }

// MemoryBytes returns the footprint of the array.
func (m PrefixMax) MemoryBytes() int64 { return int64(len(m)) * 8 }

// RejectionResult reports a rejection-sampling draw together with its cost.
type RejectionResult struct {
	Index  int  // sampled element, valid when OK
	Trials int  // number of proposals evaluated, ≥ 1 when the prefix is non-empty
	OK     bool // false when the prefix is empty or has zero envelope
}

// SampleRejection draws an index from weights[0:k] by von Neumann rejection:
// propose a uniform index, accept with probability w/envelope, repeat. The
// envelope must be ≥ every weight in the prefix (use PrefixMax). maxTrials
// bounds the loop (0 means no bound beyond a safety cap); exceeding the bound
// returns OK=false with the trial count, letting callers fall back to an
// exact method the way KnightKing caps pathological vertices.
//
// Expected trials are k·envelope / Σw — the paper's ε⁻¹ (§4.3) — which is why
// this method collapses on exponential temporal weights.
func SampleRejection(weights []float64, k int, envelope float64, maxTrials int, r *xrand.Rand) RejectionResult {
	if k <= 0 || !(envelope > 0) {
		return RejectionResult{}
	}
	if maxTrials <= 0 {
		// Safety cap: with the paper's weight functions the acceptance ratio
		// is ≥ 1/k, so k·64 trials fail with probability < e⁻⁶⁴.
		maxTrials = 64 * k
		if maxTrials < 1024 {
			maxTrials = 1024
		}
	}
	for trial := 1; trial <= maxTrials; trial++ {
		i := r.IntN(k)
		if r.Range(envelope) < weights[i] {
			return RejectionResult{Index: i, Trials: trial, OK: true}
		}
	}
	return RejectionResult{Trials: maxTrials}
}
