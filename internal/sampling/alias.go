package sampling

import (
	"github.com/tea-graph/tea/internal/xrand"
)

// AliasTable supports O(1) weighted sampling over a fixed weight array using
// Vose's method (§2.2 "alias method"): every trunk slot holds at most two
// "pieces", its own probability mass and an alias to borrow the remainder
// from. Construction is O(n).
//
// The zero-length table is valid and never sampled.
type AliasTable struct {
	prob  []float64 // acceptance threshold of slot i, scaled to [0,1]
	alias []int32   // slot to fall back to when the threshold is exceeded
}

// NewAliasTable builds the table for the given weights. Weights must be
// non-negative; an all-zero or empty array yields a table whose Sample
// reports ok=false.
func NewAliasTable(weights []float64) *AliasTable {
	n := len(weights)
	t := &AliasTable{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if !(total > 0) {
		// Degenerate: mark every slot as unsampleable.
		for i := range t.prob {
			t.prob[i] = -1
		}
		return t
	}
	// Scale so the average weight maps to 1.
	scaled := make([]float64, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
	}
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i := n - 1; i >= 0; i-- {
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		t.prob[s] = scaled[s]
		t.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	for _, l := range large {
		t.prob[l] = 1
		t.alias[l] = l
	}
	for _, s := range small {
		// Only reachable through floating-point round-off; treat as full.
		t.prob[s] = 1
		t.alias[s] = s
	}
	return t
}

// Len returns the number of slots.
func (t *AliasTable) Len() int { return len(t.prob) }

// Sample draws an index in [0, Len()) with probability proportional to the
// construction weights, in O(1). ok is false for degenerate tables.
func (t *AliasTable) Sample(r *xrand.Rand) (idx int, ok bool) {
	n := len(t.prob)
	if n == 0 {
		return 0, false
	}
	i := r.IntN(n)
	p := t.prob[i]
	if p < 0 {
		return 0, false
	}
	if p >= 1 || r.Float64() < p {
		return i, true
	}
	return int(t.alias[i]), true
}

// MemoryBytes returns the footprint of the table arrays.
func (t *AliasTable) MemoryBytes() int64 {
	return int64(len(t.prob))*8 + int64(len(t.alias))*4
}

// FillAlias constructs alias arrays in place over caller-provided storage so
// higher-level structures (HPAT) can pack thousands of small tables into two
// flat allocations and build them lock-free in parallel (§4.2: each table's
// position in memory is known before construction). prob and alias must have
// len(weights) elements. smallLarge is scratch of at least 2*len(weights)
// int32s; pass nil to allocate.
func FillAlias(weights []float64, prob []float64, alias []int32, smallLarge []int32) {
	n := len(weights)
	if len(prob) != n || len(alias) != n {
		panic("sampling: FillAlias storage length mismatch")
	}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	if !(total > 0) {
		for i := range prob {
			prob[i] = -1
		}
		return
	}
	if smallLarge == nil {
		smallLarge = make([]int32, 2*n)
	}
	small := smallLarge[:0:n]
	large := smallLarge[n:n]
	// Reuse prob as the scaled-weight scratch; slots are finalized in the
	// pairing loop below.
	for i, w := range weights {
		prob[i] = w * float64(n) / total
	}
	for i := n - 1; i >= 0; i-- {
		if prob[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		alias[s] = l
		prob[l] -= 1 - prob[s]
		if prob[l] < 1 {
			large = large[:len(large)-1]
			small = append(small, l)
		}
	}
	for _, l := range large {
		prob[l] = 1
		alias[l] = l
	}
	for _, s := range small {
		prob[s] = 1
		alias[s] = s
	}
}

// SampleAliasSlots draws from packed (prob, alias) arrays built by FillAlias.
func SampleAliasSlots(prob []float64, alias []int32, r *xrand.Rand) (idx int, ok bool) {
	n := len(prob)
	if n == 0 {
		return 0, false
	}
	i := r.IntN(n)
	p := prob[i]
	if p < 0 {
		return 0, false
	}
	if p >= 1 || r.Float64() < p {
		return i, true
	}
	return int(alias[i]), true
}
