// Package sampling provides the Monte Carlo sampling primitives that TEA
// composes (§2.2 of the paper): inverse transform sampling over prefix sums,
// Vose alias tables, and rejection sampling, plus the temporal edge-weight
// functions of §2.3 (uniform, linear, exponential, and user-defined).
//
// All primitives operate on a single vertex's out-edge list in
// newest-first order, so a candidate edge set is always a prefix of the
// weight array. This prefix property is what the higher-level PAT/HPAT
// structures exploit.
package sampling

import (
	"fmt"
	"math"

	"github.com/tea-graph/tea/internal/temporal"
)

// WeightKind enumerates the built-in temporal weight functions of §2.3.
type WeightKind int

const (
	// WeightUniform assigns every candidate the same weight: the unbiased
	// temporal walk.
	WeightUniform WeightKind = iota
	// WeightLinearTime sets δ((u,v,t)) = t − t_min(G) + 1: the "weight is the
	// time instance" variant of the linear temporal weight walk (the offset
	// keeps weights strictly positive without changing ratios meaningfully
	// for epoch-like clocks).
	WeightLinearTime
	// WeightLinearRank sets δ = rank of the edge among the vertex's edges in
	// increasing time order (oldest edge has rank 1), the rank() variant of
	// the linear temporal weight walk.
	WeightLinearRank
	// WeightExponential sets δ = exp(λ·(t − t_max(u))): the CTDNE exponential
	// temporal weight (Eq. 3). The per-vertex shift by the newest out-edge
	// time keeps exp() in range and cancels in the normalization, because
	// sampling always happens within one vertex's candidate set.
	WeightExponential
)

// String names the weight kind.
func (k WeightKind) String() string {
	switch k {
	case WeightUniform:
		return "uniform"
	case WeightLinearTime:
		return "linear-time"
	case WeightLinearRank:
		return "linear-rank"
	case WeightExponential:
		return "exponential"
	default:
		return fmt.Sprintf("WeightKind(%d)", int(k))
	}
}

// WeightSpec selects how edge weights are derived from temporal information.
// It is the engine-level form of the paper's Dynamic_weight() API: Custom, if
// non-nil, overrides Kind.
type WeightSpec struct {
	Kind WeightKind
	// Lambda scales the exponent of WeightExponential; 0 means 1.0.
	Lambda float64
	// Custom is a user Dynamic_weight function mapping an edge timestamp to a
	// positive weight. When set, it takes precedence over Kind. Custom
	// functions must be safe for concurrent use.
	Custom func(temporal.Time) float64
}

// Exponential returns the CTDNE exponential weight spec with decay λ.
func Exponential(lambda float64) WeightSpec {
	return WeightSpec{Kind: WeightExponential, Lambda: lambda}
}

// VertexWeights computes the weight of every out-edge of u, newest first,
// appending to buf. Weights are guaranteed positive; non-finite or
// non-positive custom weights are reported as an error.
func (s WeightSpec) VertexWeights(g *temporal.Graph, u temporal.Vertex, buf []float64) ([]float64, error) {
	times := g.OutTimes(u)
	switch {
	case s.Custom != nil:
		for _, t := range times {
			w := s.Custom(t)
			if !(w > 0) || math.IsInf(w, 1) {
				return nil, fmt.Errorf("sampling: custom weight %v for time %d is not a positive finite number", w, t)
			}
			buf = append(buf, w)
		}
	case s.Kind == WeightUniform:
		for range times {
			buf = append(buf, 1)
		}
	case s.Kind == WeightLinearTime:
		minT, _ := g.TimeRange()
		for _, t := range times {
			buf = append(buf, float64(t-minT)+1)
		}
	case s.Kind == WeightLinearRank:
		n := len(times)
		for i := range times {
			// Newest edge has the highest rank n, oldest has rank 1.
			buf = append(buf, float64(n-i))
		}
	case s.Kind == WeightExponential:
		lambda := s.Lambda
		if lambda == 0 {
			lambda = 1
		}
		if len(times) > 0 {
			newest := times[0]
			for _, t := range times {
				buf = append(buf, math.Exp(lambda*float64(t-newest)))
			}
		}
	default:
		return nil, fmt.Errorf("sampling: unknown weight kind %v", s.Kind)
	}
	return buf, nil
}

// MonotoneNonIncreasing reports whether weights produced by the spec are
// non-increasing along a newest-first adjacency list. All built-in temporal
// weights are (weights grow with time), which lets rejection samplers find
// the candidate-set maximum in O(1) at index 0.
func (s WeightSpec) MonotoneNonIncreasing() bool {
	return s.Custom == nil
}
