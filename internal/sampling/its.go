package sampling

import (
	"sort"

	"github.com/tea-graph/tea/internal/xrand"
)

// PrefixSum is a cumulative distribution over an ordered weight array:
// C[i] = Σ_{j<i} w_j, so C has one more element than the weights. Candidate
// prefixes of length k have total weight C[k], which is what makes a single
// prefix-sum array serve every temporal candidate set of a vertex (§3.3).
type PrefixSum []float64

// NewPrefixSum builds the cumulative array for weights.
func NewPrefixSum(weights []float64) PrefixSum {
	c := make(PrefixSum, len(weights)+1)
	sum := 0.0
	for i, w := range weights {
		sum += w
		c[i+1] = sum
	}
	return c
}

// Total returns the total weight of the k-element prefix.
func (c PrefixSum) Total(k int) float64 { return c[k] }

// RangeWeight returns the total weight of elements [lo, hi).
func (c PrefixSum) RangeWeight(lo, hi int) float64 { return c[hi] - c[lo] }

// SampleITS draws an index from the k-element prefix with probability
// proportional to its weight, via inverse transform sampling: a binary search
// over the cumulative array, O(log k). This is the classic ITS of §2.2 and
// the baseline TEA improves upon.
//
// ok is false when the prefix has zero total weight (k == 0 or all-zero
// weights).
func (c PrefixSum) SampleITS(k int, r *xrand.Rand) (idx int, ok bool) {
	total := c[k]
	if !(total > 0) {
		return 0, false
	}
	x := r.Range(total)
	// Smallest i in [1, k] with c[i] > x; the sampled element is i-1.
	i := sort.Search(k, func(j int) bool { return c[j+1] > x })
	if i >= k {
		// Floating-point edge: x landed on the total; clamp to the last
		// positive-weight element.
		i = k - 1
		for i > 0 && c[i+1] == c[i] {
			i--
		}
	}
	return i, true
}

// MemoryBytes returns the footprint of the cumulative array.
func (c PrefixSum) MemoryBytes() int64 { return int64(len(c)) * 8 }

// LinearITS samples from weights[0:k] by a sequential scan, used for tiny
// segments (the incomplete-trunk case of PAT, §3.2) where a scan beats a
// binary search. The caller supplies the total; ok is false for a
// non-positive total.
func LinearITS(weights []float64, total float64, r *xrand.Rand) (idx int, ok bool) {
	if !(total > 0) || len(weights) == 0 {
		return 0, false
	}
	x := r.Range(total)
	acc := 0.0
	for i, w := range weights {
		acc += w
		if x < acc {
			return i, true
		}
	}
	// Floating-point edge: fall back to the last positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i, true
		}
	}
	return 0, false
}
