package sampling

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/tea-graph/tea/internal/temporal"
)

// GraphWeights holds one weight per edge of a temporal graph, laid out
// exactly like the graph's CSR edge arrays (per vertex, newest first). It is
// the shared substrate every sampler index builds from.
type GraphWeights struct {
	Flat []float64
	g    *temporal.Graph
}

// BuildGraphWeights evaluates spec on every edge of g in parallel. threads <
// 1 selects GOMAXPROCS. The first weight-evaluation error (possible only with
// custom Dynamic_weight functions) aborts the build.
func BuildGraphWeights(g *temporal.Graph, spec WeightSpec, threads int) (*GraphWeights, error) {
	if threads < 1 {
		threads = runtime.GOMAXPROCS(0)
	}
	flat := make([]float64, g.NumEdges())
	numV := g.NumVertices()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	chunk := (numV + threads - 1) / threads
	if chunk == 0 {
		chunk = 1
	}
	for start := 0; start < numV; start += chunk {
		end := start + chunk
		if end > numV {
			end = numV
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for u := lo; u < hi; u++ {
				elo, _ := g.EdgeRange(temporal.Vertex(u))
				w, err := spec.VertexWeights(g, temporal.Vertex(u), flat[elo:elo])
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				_ = w // written in place via the aliased buffer
			}
		}(start, end)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return &GraphWeights{Flat: flat, g: g}, nil
}

// WrapGraphWeights adopts an existing flat weight array (one entry per edge,
// CSR order) as a GraphWeights for g. Used when weights are deserialized
// rather than evaluated; the length must match the edge count.
func WrapGraphWeights(g *temporal.Graph, flat []float64) *GraphWeights {
	if len(flat) != g.NumEdges() {
		panic(fmt.Sprintf("sampling: wrapping %d weights for a graph with %d edges", len(flat), g.NumEdges()))
	}
	return &GraphWeights{Flat: flat, g: g}
}

// Vertex returns the weights of u's out-edges, newest first, as a view into
// the flat array.
func (w *GraphWeights) Vertex(u temporal.Vertex) []float64 {
	lo, hi := w.g.EdgeRange(u)
	return w.Flat[lo:hi]
}

// Graph returns the graph the weights were built for.
func (w *GraphWeights) Graph() *temporal.Graph { return w.g }

// MemoryBytes returns the footprint of the flat weight array.
func (w *GraphWeights) MemoryBytes() int64 { return int64(len(w.Flat)) * 8 }
