package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

// checkDistribution draws n samples via draw and verifies the empirical
// frequencies match want (unnormalized weights) with a chi-square test at a
// generous threshold. Used across the package to validate samplers.
func checkDistribution(t *testing.T, name string, want []float64, n int, draw func() (int, bool)) {
	t.Helper()
	total := 0.0
	for _, w := range want {
		total += w
	}
	counts := make([]int, len(want))
	for i := 0; i < n; i++ {
		idx, ok := draw()
		if !ok {
			t.Fatalf("%s: draw %d failed", name, i)
		}
		if idx < 0 || idx >= len(want) {
			t.Fatalf("%s: index %d out of range %d", name, idx, len(want))
		}
		counts[idx]++
	}
	chi2 := 0.0
	for i, w := range want {
		expect := float64(n) * w / total
		if expect == 0 {
			if counts[i] != 0 {
				t.Fatalf("%s: zero-weight element %d sampled %d times", name, i, counts[i])
			}
			continue
		}
		d := float64(counts[i]) - expect
		chi2 += d * d / expect
	}
	// 99.9th percentile of chi-square is roughly df + 4.4*sqrt(df) + 10 for
	// the df range used in these tests; be generous to avoid flakes while
	// still catching systematic bias.
	df := float64(len(want) - 1)
	limit := df + 5*math.Sqrt(2*df) + 12
	if chi2 > limit {
		t.Fatalf("%s: chi-square %.1f exceeds %.1f (counts %v, weights %v)", name, chi2, limit, counts, want)
	}
}

func TestPrefixSumBasics(t *testing.T) {
	c := NewPrefixSum([]float64{5, 6, 7})
	want := []float64{0, 5, 11, 18}
	for i, v := range want {
		if c[i] != v {
			t.Fatalf("C[%d] = %v, want %v", i, c[i], v)
		}
	}
	if c.Total(2) != 11 {
		t.Fatalf("Total(2) = %v", c.Total(2))
	}
	if c.RangeWeight(1, 3) != 13 {
		t.Fatalf("RangeWeight(1,3) = %v", c.RangeWeight(1, 3))
	}
}

// The paper's Figure 3b: weights {5,6,7}, r=12 selects the third edge.
// Reproduce the deterministic pick by checking boundaries directly.
func TestITSSelectsByCumulative(t *testing.T) {
	c := NewPrefixSum([]float64{5, 6, 7})
	r := xrand.New(1)
	checkDistribution(t, "its", []float64{5, 6, 7}, 60000, func() (int, bool) {
		return c.SampleITS(3, r)
	})
}

func TestITSPrefixRestriction(t *testing.T) {
	// Sampling the 2-element prefix must never return index 2.
	c := NewPrefixSum([]float64{5, 6, 7})
	r := xrand.New(2)
	checkDistribution(t, "its-prefix", []float64{5, 6}, 40000, func() (int, bool) {
		return c.SampleITS(2, r)
	})
}

func TestITSZeroPrefix(t *testing.T) {
	c := NewPrefixSum([]float64{5, 6, 7})
	r := xrand.New(3)
	if _, ok := c.SampleITS(0, r); ok {
		t.Fatal("SampleITS(0) reported ok")
	}
}

func TestITSZeroWeights(t *testing.T) {
	c := NewPrefixSum([]float64{0, 0})
	r := xrand.New(4)
	if _, ok := c.SampleITS(2, r); ok {
		t.Fatal("all-zero prefix reported ok")
	}
}

func TestITSSkipsZeroWeight(t *testing.T) {
	c := NewPrefixSum([]float64{0, 3, 0, 5})
	r := xrand.New(5)
	checkDistribution(t, "its-zero", []float64{0, 3, 0, 5}, 40000, func() (int, bool) {
		return c.SampleITS(4, r)
	})
}

func TestLinearITSMatchesITS(t *testing.T) {
	w := []float64{2, 0, 7, 1}
	r := xrand.New(6)
	checkDistribution(t, "linear-its", w, 40000, func() (int, bool) {
		return LinearITS(w, 10, r)
	})
}

func TestLinearITSDegenerate(t *testing.T) {
	r := xrand.New(7)
	if _, ok := LinearITS(nil, 0, r); ok {
		t.Fatal("empty LinearITS ok")
	}
	if _, ok := LinearITS([]float64{0}, 0, r); ok {
		t.Fatal("zero-total LinearITS ok")
	}
}

func TestAliasDistribution(t *testing.T) {
	w := []float64{7, 6, 5, 4, 3, 2, 1}
	at := NewAliasTable(w)
	if at.Len() != len(w) {
		t.Fatalf("Len = %d", at.Len())
	}
	r := xrand.New(8)
	checkDistribution(t, "alias", w, 70000, func() (int, bool) { return at.Sample(r) })
}

func TestAliasSingleElement(t *testing.T) {
	at := NewAliasTable([]float64{3.5})
	r := xrand.New(9)
	for i := 0; i < 100; i++ {
		idx, ok := at.Sample(r)
		if !ok || idx != 0 {
			t.Fatalf("single-element alias returned (%d, %v)", idx, ok)
		}
	}
}

func TestAliasEmptyAndZero(t *testing.T) {
	r := xrand.New(10)
	if _, ok := NewAliasTable(nil).Sample(r); ok {
		t.Fatal("empty alias table ok")
	}
	if _, ok := NewAliasTable([]float64{0, 0}).Sample(r); ok {
		t.Fatal("zero alias table ok")
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	at := NewAliasTable([]float64{0, 1, 0, 1})
	r := xrand.New(11)
	for i := 0; i < 20000; i++ {
		idx, ok := at.Sample(r)
		if !ok {
			t.Fatal("sample failed")
		}
		if idx == 0 || idx == 2 {
			t.Fatalf("zero-weight slot %d sampled", idx)
		}
	}
}

func TestAliasSkewedDistribution(t *testing.T) {
	// Exponential-style skew, the regime that breaks rejection sampling.
	w := make([]float64, 12)
	for i := range w {
		w[i] = math.Exp(float64(i) - 11)
	}
	at := NewAliasTable(w)
	r := xrand.New(12)
	checkDistribution(t, "alias-skew", w, 120000, func() (int, bool) { return at.Sample(r) })
}

func TestFillAliasMatchesNewAliasTable(t *testing.T) {
	w := []float64{7, 6, 5, 4}
	prob := make([]float64, len(w))
	alias := make([]int32, len(w))
	FillAlias(w, prob, alias, nil)
	r := xrand.New(13)
	checkDistribution(t, "fill-alias", w, 40000, func() (int, bool) {
		return SampleAliasSlots(prob, alias, r)
	})
}

func TestFillAliasDegenerate(t *testing.T) {
	prob := make([]float64, 2)
	alias := make([]int32, 2)
	FillAlias([]float64{0, 0}, prob, alias, nil)
	r := xrand.New(14)
	if _, ok := SampleAliasSlots(prob, alias, r); ok {
		t.Fatal("degenerate packed alias ok")
	}
}

func TestFillAliasPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on storage mismatch")
		}
	}()
	FillAlias([]float64{1, 2}, make([]float64, 1), make([]int32, 2), nil)
}

// Property: alias table acceptance mass equals input distribution, tested by
// construction invariants (every slot threshold in [0,1] or -1).
func TestAliasConstructionInvariant(t *testing.T) {
	f := func(raw []uint8) bool {
		w := make([]float64, len(raw))
		for i, v := range raw {
			w[i] = float64(v)
		}
		at := NewAliasTable(w)
		for i, p := range at.prob {
			if p == -1 {
				continue
			}
			if p < 0 || p > 1+1e-9 {
				return false
			}
			if int(at.alias[i]) < 0 || int(at.alias[i]) >= len(w) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixMax(t *testing.T) {
	m := NewPrefixMax([]float64{3, 1, 7, 2})
	want := []float64{0, 3, 3, 7, 7}
	for i, v := range want {
		if m[i] != v {
			t.Fatalf("M[%d] = %v, want %v", i, m[i], v)
		}
	}
	if m.Max(3) != 7 {
		t.Fatalf("Max(3) = %v", m.Max(3))
	}
}

func TestRejectionDistribution(t *testing.T) {
	w := []float64{7, 6, 5, 4, 3, 2, 1}
	m := NewPrefixMax(w)
	r := xrand.New(15)
	checkDistribution(t, "rejection", w, 70000, func() (int, bool) {
		res := SampleRejection(w, len(w), m.Max(len(w)), 0, r)
		return res.Index, res.OK
	})
}

func TestRejectionPrefix(t *testing.T) {
	w := []float64{1, 2, 100}
	m := NewPrefixMax(w)
	r := xrand.New(16)
	// Restricting to the first two elements must use envelope max(1,2)=2 and
	// never return index 2.
	checkDistribution(t, "rejection-prefix", []float64{1, 2}, 30000, func() (int, bool) {
		res := SampleRejection(w, 2, m.Max(2), 0, r)
		return res.Index, res.OK
	})
}

func TestRejectionEmpty(t *testing.T) {
	r := xrand.New(17)
	if res := SampleRejection(nil, 0, 1, 0, r); res.OK {
		t.Fatal("empty rejection ok")
	}
	if res := SampleRejection([]float64{1}, 1, 0, 0, r); res.OK {
		t.Fatal("zero envelope ok")
	}
}

func TestRejectionTrialBound(t *testing.T) {
	// An absurd envelope forces rejections; the bounded sampler must give up.
	w := []float64{1e-12}
	r := xrand.New(18)
	res := SampleRejection(w, 1, 1.0, 10, r)
	if res.OK {
		t.Skip("improbably lucky draw") // ~1e-11 chance
	}
	if res.Trials != 10 {
		t.Fatalf("Trials = %d, want 10", res.Trials)
	}
}

// The paper's observation: exponential weights inflate rejection trial counts
// toward D while ITS/alias stay exact. Verify the trial blow-up empirically.
func TestRejectionTrialBlowupOnExponentialWeights(t *testing.T) {
	const d = 64
	w := make([]float64, d)
	for i := range w {
		w[i] = math.Exp(float64(d - i - 1 - (d - 1))) // newest-first exp weights
	}
	m := NewPrefixMax(w)
	r := xrand.New(19)
	totalTrials := 0
	const draws = 2000
	for i := 0; i < draws; i++ {
		res := SampleRejection(w, d, m.Max(d), 0, r)
		if !res.OK {
			t.Fatal("rejection failed")
		}
		totalTrials += res.Trials
	}
	avg := float64(totalTrials) / draws
	// ε = Σw/(D·max) ≈ 1.58/64 → expected trials ≈ 40.
	if avg < 20 {
		t.Fatalf("expected heavy rejection on exponential weights, got avg %.1f trials", avg)
	}
}

func TestWeightSpecUniform(t *testing.T) {
	g := temporal.CommuteGraph()
	w, err := WeightSpec{Kind: WeightUniform}.VertexWeights(g, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range w {
		if v != 1 {
			t.Fatalf("uniform weight %v", v)
		}
	}
}

func TestWeightSpecLinearTime(t *testing.T) {
	g := temporal.CommuteGraph()
	w, err := WeightSpec{Kind: WeightLinearTime}.VertexWeights(g, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 7 out-times newest-first 7..1, graph min time 0 → weights 8..2.
	want := []float64{8, 7, 6, 5, 4, 3, 2}
	for i, v := range want {
		if w[i] != v {
			t.Fatalf("linear-time weights = %v, want %v", w, want)
		}
	}
}

func TestWeightSpecLinearRank(t *testing.T) {
	g := temporal.CommuteGraph()
	w, err := WeightSpec{Kind: WeightLinearRank}.VertexWeights(g, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{7, 6, 5, 4, 3, 2, 1} // Figure 5's temporal weights
	for i, v := range want {
		if w[i] != v {
			t.Fatalf("linear-rank weights = %v, want %v", w, want)
		}
	}
}

func TestWeightSpecExponentialNormalized(t *testing.T) {
	g := temporal.CommuteGraph()
	w, err := Exponential(1).VertexWeights(g, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 1 {
		t.Fatalf("newest edge weight = %v, want 1 (shifted)", w[0])
	}
	for i := 1; i < len(w); i++ {
		if !(w[i] < w[i-1]) {
			t.Fatalf("exp weights not decreasing: %v", w)
		}
		ratio := w[i] / w[i-1]
		if math.Abs(ratio-math.Exp(-1)) > 1e-12 {
			t.Fatalf("consecutive ratio %v, want e^-1", ratio)
		}
	}
}

func TestWeightSpecExponentialLambda(t *testing.T) {
	g := temporal.CommuteGraph()
	w, err := Exponential(0.5).VertexWeights(g, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	ratio := w[1] / w[0]
	if math.Abs(ratio-math.Exp(-0.5)) > 1e-12 {
		t.Fatalf("lambda=0.5 ratio %v", ratio)
	}
}

func TestWeightSpecCustom(t *testing.T) {
	g := temporal.CommuteGraph()
	spec := WeightSpec{Custom: func(t temporal.Time) float64 { return float64(t) + 100 }}
	w, err := spec.VertexWeights(g, 7, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w[0] != 107 || w[6] != 101 {
		t.Fatalf("custom weights = %v", w)
	}
	if spec.MonotoneNonIncreasing() {
		t.Fatal("custom spec claimed monotone")
	}
}

func TestWeightSpecCustomRejectsBadWeights(t *testing.T) {
	g := temporal.CommuteGraph()
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		spec := WeightSpec{Custom: func(temporal.Time) float64 { return bad }}
		if _, err := spec.VertexWeights(g, 7, nil); err == nil {
			t.Fatalf("weight %v accepted", bad)
		}
	}
}

func TestWeightSpecMonotone(t *testing.T) {
	g := temporal.CommuteGraph()
	for _, k := range []WeightKind{WeightUniform, WeightLinearTime, WeightLinearRank, WeightExponential} {
		spec := WeightSpec{Kind: k}
		if !spec.MonotoneNonIncreasing() {
			t.Fatalf("%v not monotone", k)
		}
		w, err := spec.VertexWeights(g, 7, nil)
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i < len(w); i++ {
			if w[i] > w[i-1] {
				t.Fatalf("%v weights increase along newest-first list: %v", k, w)
			}
		}
	}
}

func TestWeightKindString(t *testing.T) {
	names := map[WeightKind]string{
		WeightUniform:     "uniform",
		WeightLinearTime:  "linear-time",
		WeightLinearRank:  "linear-rank",
		WeightExponential: "exponential",
		WeightKind(99):    "WeightKind(99)",
	}
	for k, want := range names {
		if k.String() != want {
			t.Fatalf("String(%d) = %q, want %q", int(k), k.String(), want)
		}
	}
}

// Property: ITS and alias sampling agree on totals — both must report ok on
// any positive-total weight vector and fail on zero totals.
func TestSamplerAgreementProperty(t *testing.T) {
	r := xrand.New(20)
	f := func(raw []uint8) bool {
		w := make([]float64, len(raw))
		total := 0.0
		for i, v := range raw {
			w[i] = float64(v)
			total += w[i]
		}
		c := NewPrefixSum(w)
		_, okITS := c.SampleITS(len(w), r)
		_, okAlias := NewAliasTable(w).Sample(r)
		return okITS == (total > 0) && okAlias == (total > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkITS(b *testing.B) {
	w := make([]float64, 1024)
	for i := range w {
		w[i] = float64(i + 1)
	}
	c := NewPrefixSum(w)
	r := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.SampleITS(len(w), r)
	}
}

func BenchmarkAlias(b *testing.B) {
	w := make([]float64, 1024)
	for i := range w {
		w[i] = float64(i + 1)
	}
	at := NewAliasTable(w)
	r := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at.Sample(r)
	}
}

func BenchmarkRejectionLinearWeights(b *testing.B) {
	w := make([]float64, 1024)
	for i := range w {
		w[i] = float64(len(w) - i)
	}
	m := NewPrefixMax(w)
	r := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SampleRejection(w, len(w), m.Max(len(w)), 0, r)
	}
}
