package sampling

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/tea-graph/tea/internal/temporal"
	"github.com/tea-graph/tea/internal/xrand"
)

func randomTestGraph(t *testing.T, v, e int, seed int64) *temporal.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	edges := make([]temporal.Edge, e)
	for i := range edges {
		edges[i] = temporal.Edge{
			Src:  temporal.Vertex(r.Intn(v)),
			Dst:  temporal.Vertex(r.Intn(v)),
			Time: temporal.Time(r.Intn(10000)),
		}
	}
	g, err := temporal.FromEdges(edges, temporal.WithNumVertices(v))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestBuildGraphWeightsParallelMatchesSerial(t *testing.T) {
	g := randomTestGraph(t, 200, 8000, 3)
	for _, spec := range []WeightSpec{
		{Kind: WeightUniform}, {Kind: WeightLinearTime}, {Kind: WeightLinearRank}, Exponential(0.001),
	} {
		a, err := BuildGraphWeights(g, spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		b, err := BuildGraphWeights(g, spec, 8)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.Flat, b.Flat) {
			t.Fatalf("%v: parallel weights differ from serial", spec.Kind)
		}
	}
}

func TestBuildGraphWeightsVertexViews(t *testing.T) {
	g := temporal.CommuteGraph()
	w, err := BuildGraphWeights(g, WeightSpec{Kind: WeightLinearRank}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if w.Graph() != g {
		t.Fatal("Graph accessor")
	}
	if len(w.Flat) != g.NumEdges() {
		t.Fatalf("flat len %d", len(w.Flat))
	}
	v7 := w.Vertex(7)
	if len(v7) != 7 || v7[0] != 7 || v7[6] != 1 {
		t.Fatalf("Vertex(7) = %v", v7)
	}
	if w.MemoryBytes() != int64(g.NumEdges())*8 {
		t.Fatalf("memory = %d", w.MemoryBytes())
	}
}

func TestBuildGraphWeightsPropagatesError(t *testing.T) {
	g := randomTestGraph(t, 50, 500, 5)
	spec := WeightSpec{Custom: func(t temporal.Time) float64 {
		if t > 5000 {
			return -1 // invalid: triggers the error path mid-build
		}
		return 1
	}}
	if _, err := BuildGraphWeights(g, spec, 4); err == nil {
		t.Fatal("invalid custom weight accepted")
	}
}

func TestWrapGraphWeightsRoundTrip(t *testing.T) {
	g := temporal.CommuteGraph()
	flat := make([]float64, g.NumEdges())
	for i := range flat {
		flat[i] = float64(i + 1)
	}
	w := WrapGraphWeights(g, flat)
	if &w.Flat[0] != &flat[0] {
		t.Fatal("wrap copied the slice")
	}
	if len(w.Vertex(7)) != 7 {
		t.Fatal("vertex view")
	}
}

func TestMemoryBytesAccessors(t *testing.T) {
	w := []float64{1, 2, 3}
	if NewAliasTable(w).MemoryBytes() != 3*8+3*4 {
		t.Fatal("alias memory")
	}
	if NewPrefixSum(w).MemoryBytes() != 4*8 {
		t.Fatal("prefix-sum memory")
	}
	if NewPrefixMax(w).MemoryBytes() != 4*8 {
		t.Fatal("prefix-max memory")
	}
}

// Exercise the floating-point clamp fallbacks of the ITS samplers: with a
// weight vector whose tail is zero, r.Range can land exactly on the total.
func TestITSFloatEdgeFallbacks(t *testing.T) {
	// Trailing zeros force the "x landed on total" clamp when x is maximal.
	c := NewPrefixSum([]float64{1, 0, 0})
	r := xrand.New(31)
	for i := 0; i < 20000; i++ {
		idx, ok := c.SampleITS(3, r)
		if !ok || idx != 0 {
			t.Fatalf("draw %d: (%d,%v)", i, idx, ok)
		}
	}
	for i := 0; i < 20000; i++ {
		idx, ok := LinearITS([]float64{1, 0, 0}, 1, r)
		if !ok || idx != 0 {
			t.Fatalf("linear draw %d: (%d,%v)", i, idx, ok)
		}
	}
}
