package tea

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// pathFingerprint hashes a deterministic run's full output so accidental
// changes to the RNG, sampler draw order, or walk loop are caught loudly.
// If a change here is intentional (a deliberate algorithmic change), update
// the pinned constants and call it out in the commit.
func pathFingerprint(t *testing.T, m Method) string {
	t.Helper()
	profile := DatasetProfile{Name: "golden", Vertices: 200, Edges: 5000, Skew: 0.8, Seed: 123}
	g, err := profile.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(g, ExponentialWalk(0.002), Options{Method: m, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run(WalkConfig{Length: 16, Seed: 99, KeepPaths: true, Threads: 3})
	if err != nil {
		t.Fatal(err)
	}
	h := fnv.New64a()
	for _, p := range res.Paths {
		for i, v := range p.Vertices {
			fmt.Fprintf(h, "%d,", v)
			if i > 0 {
				fmt.Fprintf(h, "@%d;", p.Times[i-1])
			}
		}
		fmt.Fprint(h, "|")
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

func TestGoldenWalkFingerprints(t *testing.T) {
	golden := map[Method]string{
		MethodHPAT: "eb9fd7d577c95ac9",
		MethodPAT:  "3c4e477ab35a54a7",
		MethodITS:  "19f79792e422a59a",
	}
	for m, want := range golden {
		if got := pathFingerprint(t, m); got != want {
			t.Errorf("%v fingerprint = %q, want %q", m, got, want)
		}
	}
}
