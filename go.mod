module github.com/tea-graph/tea

go 1.22
